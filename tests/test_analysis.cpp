// Tests for tlpsan: the access-trace recorder, the happens-before race
// detector, the lint passes, suppression mechanics, and the baseline gate.
//
// The seeded kernels here are deliberately pathological — cross-warp plain
// stores to one address, strided gathers, near-empty masks — so each pass's
// positive and negative cases are exercised under full control.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "analysis/analyzer.hpp"
#include "analysis/diagnostics.hpp"
#include "analysis/pass.hpp"
#include "graph/generators.hpp"
#include "sim/device.hpp"

namespace tlp::analysis {
namespace {

using sim::Device;
using sim::DevPtr;
using sim::LaunchConfig;
using sim::Mask;
using sim::WarpCtx;
using sim::WarpKernel;
using sim::WVec;

std::vector<Diagnostic> launch_and_analyze(Device& dev, WarpKernel& k,
                                           const LaunchConfig& cfg = {},
                                           const PassOptions& opt = {}) {
  sim::AccessTrace trace;
  dev.attach_trace(&trace);
  dev.launch(k, cfg);
  dev.attach_trace(nullptr);
  return analyze_trace(trace, opt);
}

bool has_rule(const std::vector<Diagnostic>& diags, const std::string& rule) {
  return std::any_of(diags.begin(), diags.end(),
                     [&](const Diagnostic& d) { return d.rule == rule; });
}

const Diagnostic* find_rule(const std::vector<Diagnostic>& diags,
                            const std::string& rule) {
  for (const Diagnostic& d : diags)
    if (d.rule == rule) return &d;
  return nullptr;
}

/// Every item plain-stores to the same word. With the default hardware
/// assignment each item runs on its own warp, so all stores are concurrent:
/// a guaranteed cross-warp plain/plain write race. Even and odd items write
/// from two distinct sites so the detector must name both ends.
class PlainStoreRaceKernel final : public WarpKernel {
 public:
  explicit PlainStoreRaceKernel(Device& dev)
      : buf_(dev.alloc_zeroed<float>(32)) {}
  [[nodiscard]] std::int64_t num_items() const override { return 8; }
  [[nodiscard]] std::string name() const override { return "seeded_race"; }
  void run_item(WarpCtx& warp, std::int64_t item) override {
    warp.site(item % 2 == 0 ? TLP_SITE("race_store_even")
                            : TLP_SITE("race_store_odd"));
    warp.store_scalar_f32(buf_, 0, static_cast<float>(item));
  }

 private:
  DevPtr<float> buf_;
};

TEST(RacePass, DetectsCrossWarpPlainStoreRace) {
  Device dev;
  PlainStoreRaceKernel k(dev);
  const auto diags = launch_and_analyze(dev, k);

  const Diagnostic* race = find_rule(diags, kRuleRace);
  ASSERT_NE(race, nullptr);
  EXPECT_EQ(race->severity, Severity::kError);
  EXPECT_FALSE(race->suppressed);
  EXPECT_EQ(race->kernel, "seeded_race");

  // Both racing access sites must be reported, in some (site, site2) order.
  const bool both_sites_named = std::any_of(
      diags.begin(), diags.end(), [](const Diagnostic& d) {
        return d.rule == kRuleRace &&
               ((d.site == "race_store_even" && d.site2 == "race_store_odd") ||
                (d.site == "race_store_odd" && d.site2 == "race_store_even"));
      });
  EXPECT_TRUE(both_sites_named);
}

/// Every item atomically accumulates into the same word: heavy contention but
/// NOT a race — the atomic units serialize it.
class AtomicOnlyKernel final : public WarpKernel {
 public:
  explicit AtomicOnlyKernel(Device& dev)
      : buf_(dev.alloc_zeroed<float>(32)) {}
  [[nodiscard]] std::int64_t num_items() const override { return 100; }
  [[nodiscard]] std::string name() const override { return "seeded_atomic"; }
  void run_item(WarpCtx& warp, std::int64_t /*item*/) override {
    warp.site(TLP_SITE("hot_atomic"));
    (void)warp.atomic_add_scalar_f32(buf_, 0, 1.0f);
  }

 private:
  DevPtr<float> buf_;
};

TEST(RacePass, AtomicOnlyContentionIsNotARace) {
  Device dev;
  AtomicOnlyKernel k(dev);
  const auto diags = launch_and_analyze(dev, k);
  EXPECT_FALSE(has_rule(diags, kRuleRace));
}

TEST(AtomicContentionPass, FlagsHottestAddress) {
  Device dev;
  AtomicOnlyKernel k(dev);
  const auto diags = launch_and_analyze(dev, k);
  const Diagnostic* hot = find_rule(diags, kRuleAtomicContention);
  ASSERT_NE(hot, nullptr);
  EXPECT_EQ(hot->severity, Severity::kWarning);
  EXPECT_EQ(hot->site, "hot_atomic");
  EXPECT_GE(hot->metric, 100.0);  // all 100 ops land on one address
}

/// Every item reads the same word: shared immutable data, never a race.
class ReadOnlyKernel final : public WarpKernel {
 public:
  explicit ReadOnlyKernel(Device& dev) : buf_(dev.alloc_zeroed<float>(32)) {}
  [[nodiscard]] std::int64_t num_items() const override { return 100; }
  [[nodiscard]] std::string name() const override { return "seeded_reads"; }
  void run_item(WarpCtx& warp, std::int64_t /*item*/) override {
    warp.site(TLP_SITE("shared_read"));
    (void)warp.load_scalar_f32(buf_, 0);
  }

 private:
  DevPtr<float> buf_;
};

TEST(RacePass, ReadReadIsNotARace) {
  Device dev;
  ReadOnlyKernel k(dev);
  const auto diags = launch_and_analyze(dev, k);
  EXPECT_FALSE(has_rule(diags, kRuleRace));
}

/// Mixing an atomic accumulation with a plain store to the same word IS a
/// race (the plain store is not ordered against the atomics).
class AtomicPlainMixKernel final : public WarpKernel {
 public:
  explicit AtomicPlainMixKernel(Device& dev)
      : buf_(dev.alloc_zeroed<float>(32)) {}
  [[nodiscard]] std::int64_t num_items() const override { return 8; }
  [[nodiscard]] std::string name() const override { return "seeded_mix"; }
  void run_item(WarpCtx& warp, std::int64_t item) override {
    if (item % 2 == 0) {
      warp.site(TLP_SITE("mix_atomic"));
      (void)warp.atomic_add_scalar_f32(buf_, 0, 1.0f);
    } else {
      warp.site(TLP_SITE("mix_plain"));
      warp.store_scalar_f32(buf_, 0, 1.0f);
    }
  }

 private:
  DevPtr<float> buf_;
};

TEST(RacePass, AtomicPlainMixIsARace) {
  Device dev;
  AtomicPlainMixKernel k(dev);
  const auto diags = launch_and_analyze(dev, k);
  const Diagnostic* race = find_rule(diags, kRuleRace);
  ASSERT_NE(race, nullptr);
  EXPECT_EQ(race->severity, Severity::kError);
  EXPECT_NE(race->message.find("atomic / plain"), std::string::npos);
}

/// Each item issues one full-warp gather with a 64-float stride: every lane
/// lands in its own 32 B sector (32 sectors where 4 would do).
class StridedGatherKernel final : public WarpKernel {
 public:
  StridedGatherKernel(Device& dev, bool suppress)
      : buf_(dev.alloc_zeroed<float>(32 * 64)), suppress_(suppress) {}
  [[nodiscard]] std::int64_t num_items() const override { return 32; }
  [[nodiscard]] std::string name() const override { return "seeded_strided"; }
  void run_item(WarpCtx& warp, std::int64_t /*item*/) override {
    warp.site(suppress_
                  ? TLP_SITE_SUPPRESS("strided_expected", "TLP-COAL-002",
                                      "seeded: stride is the point")
                  : TLP_SITE("strided_gather"));
    WVec<std::int64_t> idx{};
    for (int l = 0; l < sim::kWarpSize; ++l)
      idx[static_cast<std::size_t>(l)] = static_cast<std::int64_t>(l) * 64;
    (void)warp.load_f32(buf_, idx, sim::lanes_below(sim::kWarpSize));
  }

 private:
  DevPtr<float> buf_;
  bool suppress_;
};

TEST(CoalescingPass, DetectsStridedGather) {
  Device dev;
  StridedGatherKernel k(dev, /*suppress=*/false);
  const auto diags = launch_and_analyze(dev, k);
  const Diagnostic* d = find_rule(diags, kRuleCoalesce);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kWarning);
  EXPECT_FALSE(d->suppressed);
  EXPECT_EQ(d->site, "strided_gather");
  EXPECT_NEAR(d->metric, 32.0, 0.01);  // sectors per request
  EXPECT_FALSE(d->location.empty());   // resolved to file:line
}

TEST(Suppression, DowngradesExpectedFindingToNote) {
  Device dev;
  StridedGatherKernel k(dev, /*suppress=*/true);
  const auto diags = launch_and_analyze(dev, k);
  const Diagnostic* d = find_rule(diags, kRuleCoalesce);
  ASSERT_NE(d, nullptr);  // still reported...
  EXPECT_TRUE(d->suppressed);
  EXPECT_EQ(d->severity, Severity::kNote);
  EXPECT_NE(d->suppress_reason.find("stride is the point"), std::string::npos);
  // ...but never gates, even against an empty baseline.
  EXPECT_TRUE(new_versus_baseline(diags, {}).empty());
}

/// One item re-loads the same word 200 times with no intervening store: the
/// textbook register-caching candidate (§6).
class RefetchKernel final : public WarpKernel {
 public:
  explicit RefetchKernel(Device& dev) : buf_(dev.alloc_zeroed<float>(32)) {}
  [[nodiscard]] std::int64_t num_items() const override { return 1; }
  [[nodiscard]] std::string name() const override { return "seeded_refetch"; }
  void run_item(WarpCtx& warp, std::int64_t /*item*/) override {
    warp.site(TLP_SITE("refetch_loop"));
    for (int i = 0; i < 200; ++i) (void)warp.load_scalar_f32(buf_, 0);
  }

 private:
  DevPtr<float> buf_;
};

TEST(RedundantLoadPass, FlagsIntraItemRefetch) {
  Device dev;
  RefetchKernel k(dev);
  const auto diags = launch_and_analyze(dev, k);
  const Diagnostic* d = find_rule(diags, kRuleRedundantLoad);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->count, 199);  // every load after the first
}

/// One warp processes 100 items; each loads the same word once. The refetches
/// happen *across* items, where registers do not survive — not redundant.
class CrossItemLoadKernel final : public WarpKernel {
 public:
  explicit CrossItemLoadKernel(Device& dev)
      : buf_(dev.alloc_zeroed<float>(32)) {}
  [[nodiscard]] std::int64_t num_items() const override { return 100; }
  [[nodiscard]] std::string name() const override { return "seeded_xitem"; }
  void run_item(WarpCtx& warp, std::int64_t /*item*/) override {
    warp.site(TLP_SITE("xitem_load"));
    (void)warp.load_scalar_f32(buf_, 0);
  }

 private:
  DevPtr<float> buf_;
};

TEST(RedundantLoadPass, CrossItemRefetchIsNotRedundant) {
  Device dev;
  CrossItemLoadKernel k(dev);
  LaunchConfig cfg;
  cfg.assignment = sim::Assignment::kStaticChunk;
  cfg.grid_blocks = 1;
  cfg.warps_per_block = 1;  // a single warp runs every item
  const auto diags = launch_and_analyze(dev, k, cfg);
  EXPECT_FALSE(has_rule(diags, kRuleRedundantLoad));
}

/// Every request activates only 2 of 32 lanes.
class SparseLaneKernel final : public WarpKernel {
 public:
  explicit SparseLaneKernel(Device& dev)
      : buf_(dev.alloc_zeroed<float>(64)) {}
  [[nodiscard]] std::int64_t num_items() const override { return 32; }
  [[nodiscard]] std::string name() const override { return "seeded_sparse"; }
  void run_item(WarpCtx& warp, std::int64_t /*item*/) override {
    warp.site(TLP_SITE("sparse_load"));
    WVec<std::int64_t> idx{};
    idx[1] = 1;
    (void)warp.load_f32(buf_, idx, Mask{0x3});
  }

 private:
  DevPtr<float> buf_;
};

TEST(DivergencePass, FlagsMostlyIdleWarps) {
  Device dev;
  SparseLaneKernel k(dev);
  const auto diags = launch_and_analyze(dev, k);
  const Diagnostic* d = find_rule(diags, kRuleDivergence);
  ASSERT_NE(d, nullptr);
  EXPECT_NEAR(d->metric, 2.0 / 32.0, 1e-9);
}

TEST(Baseline, RoundTripAndNewDetection) {
  Device dev;
  StridedGatherKernel k(dev, /*suppress=*/false);
  auto diags = launch_and_analyze(dev, k);
  for (Diagnostic& d : diags) {
    d.system = "Seeded";
    d.dataset = "unit";
  }
  ASSERT_FALSE(diags.empty());

  // Serialize, re-extract the keys, and compare: nothing is new.
  const std::string json = to_json(diags);
  const std::vector<std::string> keys = keys_from_json(json);
  EXPECT_EQ(keys.size(), diags.size());
  EXPECT_TRUE(new_versus_baseline(diags, keys).empty());

  // Against an empty baseline every unsuppressed finding is new.
  const auto fresh = new_versus_baseline(diags, {});
  EXPECT_FALSE(fresh.empty());

  // Keys are stable under count/metric churn (a rerun with different data
  // volumes must not re-flag the same finding).
  auto churned = diags;
  for (Diagnostic& d : churned) {
    d.count *= 3;
    d.metric += 1.0;
    d.message = "different volumes";
  }
  EXPECT_TRUE(new_versus_baseline(churned, keys).empty());
}

TEST(Trace, BudgetTruncationIsReported) {
  Device dev;
  sim::AccessTrace trace(/*max_bytes=*/sizeof(sim::TraceAccess) * 10);
  dev.attach_trace(&trace);
  ReadOnlyKernel k(dev);
  dev.launch(k);
  dev.attach_trace(nullptr);
  EXPECT_TRUE(trace.truncated());
  EXPECT_EQ(trace.recorded(), 10);
  EXPECT_GT(trace.dropped(), 0);
}

TEST(Analyzer, LintsTlpgnnCleanOfErrors) {
  Rng rng(42);
  std::vector<LintDataset> datasets;
  datasets.push_back({"mini", graph::power_law(256, 1024, 2.2, rng), 32, 5});

  const LintReport report = lint_systems({"tlpgnn"}, datasets);
  EXPECT_EQ(report.runs, 2);  // GCN + GAT
  EXPECT_GT(report.launches, 0);
  EXPECT_FALSE(report.trace_truncated);
  // TLPGNN's pull aggregation is atomic-free and write-disjoint: the race
  // pass must stay silent, and nothing may reach error severity.
  for (const Diagnostic& d : report.diagnostics) {
    EXPECT_NE(d.rule, kRuleRace) << d.message;
    EXPECT_NE(d.severity, Severity::kError) << d.rule << ": " << d.message;
    EXPECT_EQ(d.system, "TLPGNN");
    EXPECT_EQ(d.dataset, "mini");
  }
}

// ---------------------------------------------------------------------------
// Whole-trace passes (v2). These kernels allocate AFTER the trace attaches so
// the allocation-lifecycle events carry provenance; the per-launch seeded
// kernels above predate the trace on purpose (unknown provenance is skipped).
// ---------------------------------------------------------------------------

/// Reads a buffer that was allocated raw — no upload, no fill, no prior
/// device store. Every load consumes garbage.
class UninitReadKernel final : public WarpKernel {
 public:
  explicit UninitReadKernel(Device& dev)
      : buf_(dev.mem().alloc<float>(64, TLP_SITE("uninit_buf"))) {}
  [[nodiscard]] std::int64_t num_items() const override { return 4; }
  [[nodiscard]] std::string name() const override { return "seeded_uninit"; }
  void run_item(WarpCtx& warp, std::int64_t item) override {
    warp.site(TLP_SITE("uninit_read"));
    (void)warp.load_scalar_f32(buf_, item);
  }

 private:
  DevPtr<float> buf_;
};

TEST(InitPass, FlagsReadBeforeFirstWrite) {
  Device dev;
  sim::AccessTrace trace;
  dev.attach_trace(&trace);
  UninitReadKernel k(dev);
  dev.launch(k);
  dev.attach_trace(nullptr);

  const auto diags = analyze_trace(trace);
  const Diagnostic* d = find_rule(diags, kRuleInit);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kError);
  EXPECT_EQ(d->kernel, "<run>");
  EXPECT_EQ(d->site, "uninit_read");   // the reading site...
  EXPECT_EQ(d->site2, "uninit_buf");   // ...and the buffer it read
  EXPECT_EQ(d->count, 4);              // one garbage lane-read per item
}

TEST(InitPass, HostFillInitializesTheBuffer) {
  // Same read pattern, but alloc_zeroed's host fill defines every byte
  // before the kernel runs: no finding.
  Device dev;
  sim::AccessTrace trace;
  dev.attach_trace(&trace);
  ReadOnlyKernel k(dev);  // alloc_zeroed + loads
  dev.launch(k);
  dev.attach_trace(nullptr);
  EXPECT_FALSE(has_rule(analyze_trace(trace), kRuleInit));
}

/// Stores into one buffer that is never loaded, downloaded, or freed — a
/// leaked write-only output. A second uploaded buffer is never touched at
/// all — dead weight.
class LeakyWriterKernel final : public WarpKernel {
 public:
  explicit LeakyWriterKernel(Device& dev)
      : out_(dev.alloc_zeroed<float>(256, TLP_SITE("leaked_out"))) {
    const std::vector<float> weights(128, 1.0f);
    (void)dev.upload<float>(weights, TLP_SITE("dead_upload"));
  }
  [[nodiscard]] std::int64_t num_items() const override { return 8; }
  [[nodiscard]] std::string name() const override { return "seeded_leak"; }
  void run_item(WarpCtx& warp, std::int64_t item) override {
    warp.site(TLP_SITE("leak_store"));
    warp.store_scalar_f32(out_, item, 1.0f);
  }

 private:
  DevPtr<float> out_;
};

TEST(LifetimePass, FlagsLeakedWriteOnlyAndDeadBuffers) {
  Device dev;
  sim::AccessTrace trace;
  dev.attach_trace(&trace);
  LeakyWriterKernel k(dev);
  dev.launch(k);
  dev.attach_trace(nullptr);

  const auto diags = analyze_trace(trace);
  const Diagnostic* wo = nullptr;
  const Diagnostic* dead = nullptr;
  for (const Diagnostic& d : diags) {
    if (d.rule != kRuleLifetime) continue;
    if (d.site2 == "write-only") wo = &d;
    if (d.site2 == "dead") dead = &d;
  }
  ASSERT_NE(wo, nullptr);
  EXPECT_EQ(wo->severity, Severity::kWarning);
  EXPECT_EQ(wo->site, "leaked_out");
  EXPECT_EQ(wo->metric, 256 * 4.0);  // bytes of wasted stores
  ASSERT_NE(dead, nullptr);
  EXPECT_EQ(dead->site, "dead_upload");
  EXPECT_EQ(dead->metric, 128 * 4.0);
}

TEST(LifetimePass, DownloadedOutputIsNotWriteOnly) {
  Device dev;
  sim::AccessTrace trace;
  dev.attach_trace(&trace);
  DevPtr<float> out = dev.alloc_zeroed<float>(256, TLP_SITE("consumed_out"));
  LeakyWriterKernel k(dev);
  dev.launch(k);
  (void)dev.download(out);  // a const view is a legitimate consumer...
  dev.attach_trace(nullptr);
  // ...so 'consumed_out' must not be classified; only the kernel's own
  // leaked buffers may appear.
  for (const Diagnostic& d : analyze_trace(trace)) {
    if (d.rule == kRuleLifetime) {
      EXPECT_NE(d.site, "consumed_out");
    }
  }
}

/// Warp-per-item degree skew: item 0 is the hub (1024 edge loads), everyone
/// else is a leaf (1 load). Under the hardware assignment each item gets its
/// own warp, so the hub's warp issues ~31x the mean.
class SkewedWalkKernel final : public WarpKernel {
 public:
  explicit SkewedWalkKernel(Device& dev)
      : buf_(dev.alloc_zeroed<float>(2048)) {}
  [[nodiscard]] std::int64_t num_items() const override { return 32; }
  [[nodiscard]] std::string name() const override { return "seeded_skew"; }
  void run_item(WarpCtx& warp, std::int64_t item) override {
    warp.site(TLP_SITE("skew_walk"));
    const std::int64_t edges = item == 0 ? 1024 : 1;
    for (std::int64_t e = 0; e < edges; ++e)
      (void)warp.load_scalar_f32(buf_, (item + e) % 2048);
  }

 private:
  DevPtr<float> buf_;
};

TEST(BalancePass, FlagsHubWarpRequestSkew) {
  Device dev;
  SkewedWalkKernel k(dev);
  const auto diags = launch_and_analyze(dev, k);
  const Diagnostic* d = find_rule(diags, kRuleBalance);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kWarning);
  EXPECT_EQ(d->kernel, "seeded_skew");
  EXPECT_EQ(d->site, "skew_walk");     // the busiest warp's dominant site
  EXPECT_GT(d->metric, 8.0);           // ratio over the per-warp mean
  EXPECT_EQ(d->count, 1024);           // the hub warp's request count
}

TEST(BalancePass, UniformWorkIsSilent) {
  // Same shape, no hub: every warp issues the same request count.
  class UniformWalkKernel final : public WarpKernel {
   public:
    explicit UniformWalkKernel(Device& dev)
        : buf_(dev.alloc_zeroed<float>(2048)) {}
    [[nodiscard]] std::int64_t num_items() const override { return 32; }
    [[nodiscard]] std::string name() const override { return "seeded_flat"; }
    void run_item(WarpCtx& warp, std::int64_t item) override {
      warp.site(TLP_SITE("flat_walk"));
      for (std::int64_t e = 0; e < 32; ++e)
        (void)warp.load_scalar_f32(buf_, (item * 32 + e) % 2048);
    }

   private:
    DevPtr<float> buf_;
  };
  Device dev;
  UniformWalkKernel k(dev);
  EXPECT_FALSE(has_rule(launch_and_analyze(dev, k), kRuleBalance));
}

/// Streams one 128 B line per 32-float stride over the whole buffer, twice:
/// every second-pass touch has an LRU stack distance equal to the full
/// working set.
class StreamingSweepKernel final : public WarpKernel {
 public:
  StreamingSweepKernel(Device& dev, std::int64_t floats)
      : buf_(dev.alloc_zeroed<float>(floats)), n_(floats) {}
  [[nodiscard]] std::int64_t num_items() const override { return 1; }
  [[nodiscard]] std::string name() const override { return "seeded_stream"; }
  void run_item(WarpCtx& warp, std::int64_t /*item*/) override {
    warp.site(TLP_SITE("stream_gather"));
    for (int pass = 0; pass < 2; ++pass)
      for (std::int64_t i = 0; i < n_; i += 32)
        (void)warp.load_scalar_f32(buf_, i);
  }

 private:
  DevPtr<float> buf_;
  std::int64_t n_;
};

TEST(ReusePass, FlagsWorkingSetLargerThanL2) {
  Device dev;
  sim::AccessTrace trace;
  dev.attach_trace(&trace);
  StreamingSweepKernel k(dev, /*floats=*/64 * 1024);  // 256 KB, 2048 lines
  dev.launch(k);
  dev.attach_trace(nullptr);

  // Against a 16 KB L2 (128 lines) every one of the 2048 second-pass reuses
  // is beyond capacity.
  PassOptions small;
  small.gpu.l2_bytes = 16 * 1024;
  const auto diags = analyze_trace(trace, small);
  const Diagnostic* d = find_rule(diags, kRuleReuse);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kWarning);
  EXPECT_EQ(d->site, "stream_gather");
  EXPECT_EQ(d->count, 2048);

  // The identical trace against the full V100 L2 (6 MB) fits: silent.
  EXPECT_FALSE(has_rule(analyze_trace(trace), kRuleReuse));
}

TEST(Analyzer, TruncatedTraceSkipsWholeTracePassesAndEmitsMetaNote) {
  Device dev;
  sim::AccessTrace trace(/*max_bytes=*/sizeof(sim::TraceAccess) * 4);
  dev.attach_trace(&trace);
  LeakyWriterKernel k(dev);  // would flag LIFE-007 on a complete trace
  dev.launch(k);
  dev.attach_trace(nullptr);
  ASSERT_TRUE(trace.truncated());

  const auto diags = analyze_trace(trace);
  const Diagnostic* meta = find_rule(diags, kRuleMeta);
  ASSERT_NE(meta, nullptr);
  EXPECT_EQ(meta->severity, Severity::kNote);
  EXPECT_EQ(meta->kernel, "<run>");
  // Lifetime claims over a trace with holes would be fabrications.
  EXPECT_FALSE(has_rule(diags, kRuleInit));
  EXPECT_FALSE(has_rule(diags, kRuleLifetime));
  EXPECT_FALSE(has_rule(diags, kRuleReuse));
}

TEST(Analyzer, LintReportIsByteDeterministic) {
  const auto run_once = [] {
    Rng rng(7);
    std::vector<LintDataset> datasets;
    datasets.push_back({"mini", graph::power_law(256, 1024, 2.2, rng), 32, 5});
    const LintReport r = lint_systems({"tlpgnn", "dgl"}, datasets);
    return to_json(r.diagnostics, r.trace_truncated);
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(Sarif, EmitsSarif210Shape) {
  Device dev;
  StridedGatherKernel bad(dev, /*suppress=*/false);
  auto diags = launch_and_analyze(dev, bad);
  Device dev2;
  StridedGatherKernel expected(dev2, /*suppress=*/true);
  auto sup = launch_and_analyze(dev2, expected);
  diags.insert(diags.end(), sup.begin(), sup.end());
  for (Diagnostic& d : diags) {
    d.system = "Seeded";
    d.dataset = "unit";
  }
  ASSERT_GE(diags.size(), 2u);

  const std::string sarif = to_sarif(diags);
  const auto has = [&](const char* needle) {
    return sarif.find(needle) != std::string::npos;
  };
  // Top-level 2.1.0 envelope.
  EXPECT_TRUE(has("\"$schema\": \"https://json.schemastore.org/"
                  "sarif-2.1.0.json\""));
  EXPECT_TRUE(has("\"version\": \"2.1.0\""));
  EXPECT_TRUE(has("\"runs\""));
  // tool.driver with a populated rules table.
  EXPECT_TRUE(has("\"driver\""));
  EXPECT_TRUE(has("\"name\": \"tlplint\""));
  EXPECT_TRUE(has("\"id\": \"TLP-COAL-002\""));
  // Results: ruleId/level/message plus a physical location anchored to the
  // source root.
  EXPECT_TRUE(has("\"ruleId\": \"TLP-COAL-002\""));
  EXPECT_TRUE(has("\"level\": \"warning\""));
  EXPECT_TRUE(has("\"uriBaseId\": \"SRCROOT\""));
  EXPECT_TRUE(has("\"startLine\""));
  // The suppressed finding carries an inSource suppression with its
  // justification; every result carries the stable fingerprint.
  EXPECT_TRUE(has("\"suppressions\""));
  EXPECT_TRUE(has("\"kind\": \"inSource\""));
  EXPECT_TRUE(has("stride is the point"));
  EXPECT_TRUE(has("\"partialFingerprints\""));
  EXPECT_TRUE(has("\"tlpKey/v1\""));
  // Structural sanity: braces and brackets balance.
  EXPECT_EQ(std::count(sarif.begin(), sarif.end(), '{'),
            std::count(sarif.begin(), sarif.end(), '}'));
  EXPECT_EQ(std::count(sarif.begin(), sarif.end(), '['),
            std::count(sarif.begin(), sarif.end(), ']'));
}

TEST(Analyzer, EdgeBaselineUncoalescedIsSuppressedNotDropped) {
  Rng rng(42);
  std::vector<LintDataset> datasets;
  datasets.push_back({"mini", graph::power_law(256, 4096, 2.2, rng), 64, 5});

  const LintReport report = lint_systems({"edge"}, datasets);
  // The paper-documented uncoalesced feature gather must be *visible* in the
  // report (the finding is real) yet suppressed (it is expected).
  const bool found = std::any_of(
      report.diagnostics.begin(), report.diagnostics.end(),
      [](const Diagnostic& d) {
        return d.rule == kRuleCoalesce && d.site == "edge_feat_gather" &&
               d.suppressed;
      });
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace tlp::analysis
