// Tests for tlpsan: the access-trace recorder, the happens-before race
// detector, the lint passes, suppression mechanics, and the baseline gate.
//
// The seeded kernels here are deliberately pathological — cross-warp plain
// stores to one address, strided gathers, near-empty masks — so each pass's
// positive and negative cases are exercised under full control.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "analysis/analyzer.hpp"
#include "analysis/diagnostics.hpp"
#include "analysis/pass.hpp"
#include "graph/generators.hpp"
#include "sim/device.hpp"

namespace tlp::analysis {
namespace {

using sim::Device;
using sim::DevPtr;
using sim::LaunchConfig;
using sim::Mask;
using sim::WarpCtx;
using sim::WarpKernel;
using sim::WVec;

std::vector<Diagnostic> launch_and_analyze(Device& dev, WarpKernel& k,
                                           const LaunchConfig& cfg = {},
                                           const PassOptions& opt = {}) {
  sim::AccessTrace trace;
  dev.attach_trace(&trace);
  dev.launch(k, cfg);
  dev.attach_trace(nullptr);
  return analyze_trace(trace, opt);
}

bool has_rule(const std::vector<Diagnostic>& diags, const std::string& rule) {
  return std::any_of(diags.begin(), diags.end(),
                     [&](const Diagnostic& d) { return d.rule == rule; });
}

const Diagnostic* find_rule(const std::vector<Diagnostic>& diags,
                            const std::string& rule) {
  for (const Diagnostic& d : diags)
    if (d.rule == rule) return &d;
  return nullptr;
}

/// Every item plain-stores to the same word. With the default hardware
/// assignment each item runs on its own warp, so all stores are concurrent:
/// a guaranteed cross-warp plain/plain write race. Even and odd items write
/// from two distinct sites so the detector must name both ends.
class PlainStoreRaceKernel final : public WarpKernel {
 public:
  explicit PlainStoreRaceKernel(Device& dev)
      : buf_(dev.alloc_zeroed<float>(32)) {}
  [[nodiscard]] std::int64_t num_items() const override { return 8; }
  [[nodiscard]] std::string name() const override { return "seeded_race"; }
  void run_item(WarpCtx& warp, std::int64_t item) override {
    warp.site(item % 2 == 0 ? TLP_SITE("race_store_even")
                            : TLP_SITE("race_store_odd"));
    warp.store_scalar_f32(buf_, 0, static_cast<float>(item));
  }

 private:
  DevPtr<float> buf_;
};

TEST(RacePass, DetectsCrossWarpPlainStoreRace) {
  Device dev;
  PlainStoreRaceKernel k(dev);
  const auto diags = launch_and_analyze(dev, k);

  const Diagnostic* race = find_rule(diags, kRuleRace);
  ASSERT_NE(race, nullptr);
  EXPECT_EQ(race->severity, Severity::kError);
  EXPECT_FALSE(race->suppressed);
  EXPECT_EQ(race->kernel, "seeded_race");

  // Both racing access sites must be reported, in some (site, site2) order.
  const bool both_sites_named = std::any_of(
      diags.begin(), diags.end(), [](const Diagnostic& d) {
        return d.rule == kRuleRace &&
               ((d.site == "race_store_even" && d.site2 == "race_store_odd") ||
                (d.site == "race_store_odd" && d.site2 == "race_store_even"));
      });
  EXPECT_TRUE(both_sites_named);
}

/// Every item atomically accumulates into the same word: heavy contention but
/// NOT a race — the atomic units serialize it.
class AtomicOnlyKernel final : public WarpKernel {
 public:
  explicit AtomicOnlyKernel(Device& dev)
      : buf_(dev.alloc_zeroed<float>(32)) {}
  [[nodiscard]] std::int64_t num_items() const override { return 100; }
  [[nodiscard]] std::string name() const override { return "seeded_atomic"; }
  void run_item(WarpCtx& warp, std::int64_t /*item*/) override {
    warp.site(TLP_SITE("hot_atomic"));
    (void)warp.atomic_add_scalar_f32(buf_, 0, 1.0f);
  }

 private:
  DevPtr<float> buf_;
};

TEST(RacePass, AtomicOnlyContentionIsNotARace) {
  Device dev;
  AtomicOnlyKernel k(dev);
  const auto diags = launch_and_analyze(dev, k);
  EXPECT_FALSE(has_rule(diags, kRuleRace));
}

TEST(AtomicContentionPass, FlagsHottestAddress) {
  Device dev;
  AtomicOnlyKernel k(dev);
  const auto diags = launch_and_analyze(dev, k);
  const Diagnostic* hot = find_rule(diags, kRuleAtomicContention);
  ASSERT_NE(hot, nullptr);
  EXPECT_EQ(hot->severity, Severity::kWarning);
  EXPECT_EQ(hot->site, "hot_atomic");
  EXPECT_GE(hot->metric, 100.0);  // all 100 ops land on one address
}

/// Every item reads the same word: shared immutable data, never a race.
class ReadOnlyKernel final : public WarpKernel {
 public:
  explicit ReadOnlyKernel(Device& dev) : buf_(dev.alloc_zeroed<float>(32)) {}
  [[nodiscard]] std::int64_t num_items() const override { return 100; }
  [[nodiscard]] std::string name() const override { return "seeded_reads"; }
  void run_item(WarpCtx& warp, std::int64_t /*item*/) override {
    warp.site(TLP_SITE("shared_read"));
    (void)warp.load_scalar_f32(buf_, 0);
  }

 private:
  DevPtr<float> buf_;
};

TEST(RacePass, ReadReadIsNotARace) {
  Device dev;
  ReadOnlyKernel k(dev);
  const auto diags = launch_and_analyze(dev, k);
  EXPECT_FALSE(has_rule(diags, kRuleRace));
}

/// Mixing an atomic accumulation with a plain store to the same word IS a
/// race (the plain store is not ordered against the atomics).
class AtomicPlainMixKernel final : public WarpKernel {
 public:
  explicit AtomicPlainMixKernel(Device& dev)
      : buf_(dev.alloc_zeroed<float>(32)) {}
  [[nodiscard]] std::int64_t num_items() const override { return 8; }
  [[nodiscard]] std::string name() const override { return "seeded_mix"; }
  void run_item(WarpCtx& warp, std::int64_t item) override {
    if (item % 2 == 0) {
      warp.site(TLP_SITE("mix_atomic"));
      (void)warp.atomic_add_scalar_f32(buf_, 0, 1.0f);
    } else {
      warp.site(TLP_SITE("mix_plain"));
      warp.store_scalar_f32(buf_, 0, 1.0f);
    }
  }

 private:
  DevPtr<float> buf_;
};

TEST(RacePass, AtomicPlainMixIsARace) {
  Device dev;
  AtomicPlainMixKernel k(dev);
  const auto diags = launch_and_analyze(dev, k);
  const Diagnostic* race = find_rule(diags, kRuleRace);
  ASSERT_NE(race, nullptr);
  EXPECT_EQ(race->severity, Severity::kError);
  EXPECT_NE(race->message.find("atomic / plain"), std::string::npos);
}

/// Each item issues one full-warp gather with a 64-float stride: every lane
/// lands in its own 32 B sector (32 sectors where 4 would do).
class StridedGatherKernel final : public WarpKernel {
 public:
  StridedGatherKernel(Device& dev, bool suppress)
      : buf_(dev.alloc_zeroed<float>(32 * 64)), suppress_(suppress) {}
  [[nodiscard]] std::int64_t num_items() const override { return 32; }
  [[nodiscard]] std::string name() const override { return "seeded_strided"; }
  void run_item(WarpCtx& warp, std::int64_t /*item*/) override {
    warp.site(suppress_
                  ? TLP_SITE_SUPPRESS("strided_expected", "TLP-COAL-002",
                                      "seeded: stride is the point")
                  : TLP_SITE("strided_gather"));
    WVec<std::int64_t> idx{};
    for (int l = 0; l < sim::kWarpSize; ++l)
      idx[static_cast<std::size_t>(l)] = static_cast<std::int64_t>(l) * 64;
    (void)warp.load_f32(buf_, idx, sim::lanes_below(sim::kWarpSize));
  }

 private:
  DevPtr<float> buf_;
  bool suppress_;
};

TEST(CoalescingPass, DetectsStridedGather) {
  Device dev;
  StridedGatherKernel k(dev, /*suppress=*/false);
  const auto diags = launch_and_analyze(dev, k);
  const Diagnostic* d = find_rule(diags, kRuleCoalesce);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kWarning);
  EXPECT_FALSE(d->suppressed);
  EXPECT_EQ(d->site, "strided_gather");
  EXPECT_NEAR(d->metric, 32.0, 0.01);  // sectors per request
  EXPECT_FALSE(d->location.empty());   // resolved to file:line
}

TEST(Suppression, DowngradesExpectedFindingToNote) {
  Device dev;
  StridedGatherKernel k(dev, /*suppress=*/true);
  const auto diags = launch_and_analyze(dev, k);
  const Diagnostic* d = find_rule(diags, kRuleCoalesce);
  ASSERT_NE(d, nullptr);  // still reported...
  EXPECT_TRUE(d->suppressed);
  EXPECT_EQ(d->severity, Severity::kNote);
  EXPECT_NE(d->suppress_reason.find("stride is the point"), std::string::npos);
  // ...but never gates, even against an empty baseline.
  EXPECT_TRUE(new_versus_baseline(diags, {}).empty());
}

/// One item re-loads the same word 200 times with no intervening store: the
/// textbook register-caching candidate (§6).
class RefetchKernel final : public WarpKernel {
 public:
  explicit RefetchKernel(Device& dev) : buf_(dev.alloc_zeroed<float>(32)) {}
  [[nodiscard]] std::int64_t num_items() const override { return 1; }
  [[nodiscard]] std::string name() const override { return "seeded_refetch"; }
  void run_item(WarpCtx& warp, std::int64_t /*item*/) override {
    warp.site(TLP_SITE("refetch_loop"));
    for (int i = 0; i < 200; ++i) (void)warp.load_scalar_f32(buf_, 0);
  }

 private:
  DevPtr<float> buf_;
};

TEST(RedundantLoadPass, FlagsIntraItemRefetch) {
  Device dev;
  RefetchKernel k(dev);
  const auto diags = launch_and_analyze(dev, k);
  const Diagnostic* d = find_rule(diags, kRuleRedundantLoad);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->count, 199);  // every load after the first
}

/// One warp processes 100 items; each loads the same word once. The refetches
/// happen *across* items, where registers do not survive — not redundant.
class CrossItemLoadKernel final : public WarpKernel {
 public:
  explicit CrossItemLoadKernel(Device& dev)
      : buf_(dev.alloc_zeroed<float>(32)) {}
  [[nodiscard]] std::int64_t num_items() const override { return 100; }
  [[nodiscard]] std::string name() const override { return "seeded_xitem"; }
  void run_item(WarpCtx& warp, std::int64_t /*item*/) override {
    warp.site(TLP_SITE("xitem_load"));
    (void)warp.load_scalar_f32(buf_, 0);
  }

 private:
  DevPtr<float> buf_;
};

TEST(RedundantLoadPass, CrossItemRefetchIsNotRedundant) {
  Device dev;
  CrossItemLoadKernel k(dev);
  LaunchConfig cfg;
  cfg.assignment = sim::Assignment::kStaticChunk;
  cfg.grid_blocks = 1;
  cfg.warps_per_block = 1;  // a single warp runs every item
  const auto diags = launch_and_analyze(dev, k, cfg);
  EXPECT_FALSE(has_rule(diags, kRuleRedundantLoad));
}

/// Every request activates only 2 of 32 lanes.
class SparseLaneKernel final : public WarpKernel {
 public:
  explicit SparseLaneKernel(Device& dev)
      : buf_(dev.alloc_zeroed<float>(64)) {}
  [[nodiscard]] std::int64_t num_items() const override { return 32; }
  [[nodiscard]] std::string name() const override { return "seeded_sparse"; }
  void run_item(WarpCtx& warp, std::int64_t /*item*/) override {
    warp.site(TLP_SITE("sparse_load"));
    WVec<std::int64_t> idx{};
    idx[1] = 1;
    (void)warp.load_f32(buf_, idx, Mask{0x3});
  }

 private:
  DevPtr<float> buf_;
};

TEST(DivergencePass, FlagsMostlyIdleWarps) {
  Device dev;
  SparseLaneKernel k(dev);
  const auto diags = launch_and_analyze(dev, k);
  const Diagnostic* d = find_rule(diags, kRuleDivergence);
  ASSERT_NE(d, nullptr);
  EXPECT_NEAR(d->metric, 2.0 / 32.0, 1e-9);
}

TEST(Baseline, RoundTripAndNewDetection) {
  Device dev;
  StridedGatherKernel k(dev, /*suppress=*/false);
  auto diags = launch_and_analyze(dev, k);
  for (Diagnostic& d : diags) {
    d.system = "Seeded";
    d.dataset = "unit";
  }
  ASSERT_FALSE(diags.empty());

  // Serialize, re-extract the keys, and compare: nothing is new.
  const std::string json = to_json(diags);
  const std::vector<std::string> keys = keys_from_json(json);
  EXPECT_EQ(keys.size(), diags.size());
  EXPECT_TRUE(new_versus_baseline(diags, keys).empty());

  // Against an empty baseline every unsuppressed finding is new.
  const auto fresh = new_versus_baseline(diags, {});
  EXPECT_FALSE(fresh.empty());

  // Keys are stable under count/metric churn (a rerun with different data
  // volumes must not re-flag the same finding).
  auto churned = diags;
  for (Diagnostic& d : churned) {
    d.count *= 3;
    d.metric += 1.0;
    d.message = "different volumes";
  }
  EXPECT_TRUE(new_versus_baseline(churned, keys).empty());
}

TEST(Trace, BudgetTruncationIsReported) {
  Device dev;
  sim::AccessTrace trace(/*max_bytes=*/sizeof(sim::TraceAccess) * 10);
  dev.attach_trace(&trace);
  ReadOnlyKernel k(dev);
  dev.launch(k);
  dev.attach_trace(nullptr);
  EXPECT_TRUE(trace.truncated());
  EXPECT_EQ(trace.recorded(), 10);
  EXPECT_GT(trace.dropped(), 0);
}

TEST(Analyzer, LintsTlpgnnCleanOfErrors) {
  Rng rng(42);
  std::vector<LintDataset> datasets;
  datasets.push_back({"mini", graph::power_law(256, 1024, 2.2, rng), 32, 5});

  const LintReport report = lint_systems({"tlpgnn"}, datasets);
  EXPECT_EQ(report.runs, 2);  // GCN + GAT
  EXPECT_GT(report.launches, 0);
  EXPECT_FALSE(report.trace_truncated);
  // TLPGNN's pull aggregation is atomic-free and write-disjoint: the race
  // pass must stay silent, and nothing may reach error severity.
  for (const Diagnostic& d : report.diagnostics) {
    EXPECT_NE(d.rule, kRuleRace) << d.message;
    EXPECT_NE(d.severity, Severity::kError) << d.rule << ": " << d.message;
    EXPECT_EQ(d.system, "TLPGNN");
    EXPECT_EQ(d.dataset, "mini");
  }
}

TEST(Analyzer, EdgeBaselineUncoalescedIsSuppressedNotDropped) {
  Rng rng(42);
  std::vector<LintDataset> datasets;
  datasets.push_back({"mini", graph::power_law(256, 4096, 2.2, rng), 64, 5});

  const LintReport report = lint_systems({"edge"}, datasets);
  // The paper-documented uncoalesced feature gather must be *visible* in the
  // report (the finding is real) yet suppressed (it is expected).
  const bool found = std::any_of(
      report.diagnostics.begin(), report.diagnostics.end(),
      [](const Diagnostic& d) {
        return d.rule == kRuleCoalesce && d.site == "edge_feat_gather" &&
               d.suppressed;
      });
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace tlp::analysis
