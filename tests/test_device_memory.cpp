// Tests for the simulated device-memory arena.
#include <gtest/gtest.h>

#include "sim/device_memory.hpp"

namespace tlp::sim {
namespace {

TEST(DeviceMemory, AllocAligned) {
  DeviceMemory mem;
  const auto a = mem.alloc<float>(3);
  const auto b = mem.alloc<float>(5);
  EXPECT_EQ(a.byte_offset % 256, 0u);
  EXPECT_EQ(b.byte_offset % 256, 0u);
  EXPECT_NE(a.byte_offset, b.byte_offset);
}

TEST(DeviceMemory, ReadWriteRoundTrip) {
  DeviceMemory mem;
  const auto p = mem.alloc<float>(10);
  mem.write<float>(p.addr(7), 3.25f);
  EXPECT_FLOAT_EQ(mem.read<float>(p.addr(7)), 3.25f);
}

TEST(DeviceMemory, ViewsSeeWrites) {
  DeviceMemory mem;
  const auto p = mem.alloc<std::int32_t>(4);
  auto v = mem.view(p);
  v[2] = 42;
  EXPECT_EQ(mem.read<std::int32_t>(p.addr(2)), 42);
}

TEST(DeviceMemory, LiveAndPeakAccounting) {
  DeviceMemory mem;
  auto a = mem.alloc<float>(100);  // 400 B
  EXPECT_EQ(mem.live_bytes(), 400);
  auto b = mem.alloc<float>(50);  // +200 B
  EXPECT_EQ(mem.live_bytes(), 600);
  EXPECT_EQ(mem.peak_bytes(), 600);
  mem.free(a);
  EXPECT_EQ(mem.live_bytes(), 200);
  EXPECT_EQ(mem.peak_bytes(), 600);  // peak is sticky
  mem.free(b);
  EXPECT_EQ(mem.live_bytes(), 0);
}

TEST(DeviceMemory, FreeNullsHandle) {
  DeviceMemory mem;
  auto p = mem.alloc<float>(8);
  mem.free(p);
  EXPECT_TRUE(p.is_null());
}

TEST(DeviceMemory, ResetClearsEverything) {
  DeviceMemory mem;
  (void)mem.alloc<float>(1000);
  mem.reset();
  EXPECT_EQ(mem.live_bytes(), 0);
  EXPECT_EQ(mem.peak_bytes(), 0);
  const auto p = mem.alloc<float>(1);
  EXPECT_EQ(p.byte_offset, 0u);
}

TEST(DeviceMemory, LargeAllocationGrows) {
  DeviceMemory mem;
  const auto p = mem.alloc<float>(1 << 22);  // 16 MB
  mem.write<float>(p.addr((1 << 22) - 1), 1.0f);
  EXPECT_FLOAT_EQ(mem.read<float>(p.addr((1 << 22) - 1)), 1.0f);
}

TEST(DevPtr, AddrArithmetic) {
  const DevPtr<std::int64_t> p{1024, 10};
  EXPECT_EQ(p.addr(0), 1024u);
  EXPECT_EQ(p.addr(3), 1024u + 24u);
}

}  // namespace
}  // namespace tlp::sim
