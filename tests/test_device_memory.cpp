// Tests for the simulated device-memory arena.
#include <gtest/gtest.h>

#include "sim/device_memory.hpp"

namespace tlp::sim {
namespace {

TEST(DeviceMemory, AllocAligned) {
  DeviceMemory mem;
  const auto a = mem.alloc<float>(3);
  const auto b = mem.alloc<float>(5);
  EXPECT_EQ(a.byte_offset % 256, 0u);
  EXPECT_EQ(b.byte_offset % 256, 0u);
  EXPECT_NE(a.byte_offset, b.byte_offset);
}

TEST(DeviceMemory, ReadWriteRoundTrip) {
  DeviceMemory mem;
  const auto p = mem.alloc<float>(10);
  mem.write<float>(p.addr(7), 3.25f);
  EXPECT_FLOAT_EQ(mem.read<float>(p.addr(7)), 3.25f);
}

TEST(DeviceMemory, ViewsSeeWrites) {
  DeviceMemory mem;
  const auto p = mem.alloc<std::int32_t>(4);
  auto v = mem.view(p);
  v[2] = 42;
  EXPECT_EQ(mem.read<std::int32_t>(p.addr(2)), 42);
}

TEST(DeviceMemory, LiveAndPeakAccounting) {
  DeviceMemory mem;
  auto a = mem.alloc<float>(100);  // 400 B
  EXPECT_EQ(mem.live_bytes(), 400);
  auto b = mem.alloc<float>(50);  // +200 B
  EXPECT_EQ(mem.live_bytes(), 600);
  EXPECT_EQ(mem.peak_bytes(), 600);
  mem.free(a);
  EXPECT_EQ(mem.live_bytes(), 200);
  EXPECT_EQ(mem.peak_bytes(), 600);  // peak is sticky
  mem.free(b);
  EXPECT_EQ(mem.live_bytes(), 0);
}

TEST(DeviceMemory, FreeNullsHandle) {
  DeviceMemory mem;
  auto p = mem.alloc<float>(8);
  mem.free(p);
  EXPECT_TRUE(p.is_null());
}

TEST(DeviceMemory, ResetClearsEverything) {
  DeviceMemory mem;
  (void)mem.alloc<float>(1000);
  mem.reset();
  EXPECT_EQ(mem.live_bytes(), 0);
  EXPECT_EQ(mem.peak_bytes(), 0);
  const auto p = mem.alloc<float>(1);
  EXPECT_EQ(p.byte_offset, 0u);
}

TEST(DeviceMemory, LargeAllocationGrows) {
  DeviceMemory mem;
  const auto p = mem.alloc<float>(1 << 22);  // 16 MB
  mem.write<float>(p.addr((1 << 22) - 1), 1.0f);
  EXPECT_FLOAT_EQ(mem.read<float>(p.addr((1 << 22) - 1)), 1.0f);
}

TEST(DevPtr, AddrArithmetic) {
  const DevPtr<std::int64_t> p{1024, 10};
  EXPECT_EQ(p.addr(0), 1024u);
  EXPECT_EQ(p.addr(3), 1024u + 24u);
}

TEST(DeviceMemory, CapacityLimitThrowsOutOfMemory) {
  DeviceMemory mem;
  mem.set_capacity(1024);
  auto a = mem.alloc<float>(128);  // 512 B, fits
  try {
    (void)mem.alloc<float>(256);  // 1024 B more would exceed the limit
    FAIL() << "expected OutOfMemory";
  } catch (const tlp::OutOfMemory& e) {
    EXPECT_EQ(e.requested_bytes, 1024);
    EXPECT_EQ(e.live_bytes, 512);
    EXPECT_EQ(e.capacity_bytes, 1024);
  }
  // The limit models a recycling allocator: freeing makes room again.
  mem.free(a);
  EXPECT_NO_THROW((void)mem.alloc<float>(256));
}

TEST(DeviceMemory, InjectedOomIsOneShot) {
  DeviceMemory mem;
  mem.set_fault_plan({.oom_at_alloc = 2});
  EXPECT_NO_THROW((void)mem.alloc<float>(8));
  EXPECT_THROW((void)mem.alloc<float>(8), tlp::OutOfMemory);
  EXPECT_NO_THROW((void)mem.alloc<float>(8));  // fault already consumed
  mem.reset();
  // The consumed fault stays consumed across reset() (degradation retries).
  EXPECT_NO_THROW((void)mem.alloc<float>(8));
}

TEST(DeviceMemory, GuardedCatchesOutOfBoundsAccess) {
  DeviceMemory mem(MemoryMode::kGuarded);
  const auto p = mem.alloc<float>(4);
  EXPECT_NO_THROW((void)mem.read<float>(p.addr(3)));
  EXPECT_THROW((void)mem.read<float>(p.addr(4)), tlp::InvalidAccess);
  EXPECT_THROW(mem.write<float>(p.addr(4), 1.0f), tlp::InvalidAccess);
}

TEST(DeviceMemory, GuardedCatchesStraddlingAccess) {
  DeviceMemory mem(MemoryMode::kGuarded);
  const auto p = mem.alloc<std::uint8_t>(6);
  // A 4-byte read at offset 4 covers bytes [4, 8) of a 6-byte buffer.
  EXPECT_THROW((void)mem.read<std::uint32_t>(p.addr(4)), tlp::InvalidAccess);
}

TEST(DeviceMemory, GuardedCatchesUseAfterFree) {
  DeviceMemory mem(MemoryMode::kGuarded);
  auto p = mem.alloc<float>(8);
  const auto addr = p.addr(0);
  mem.write<float>(addr, 1.0f);
  mem.free(p);
  EXPECT_THROW((void)mem.read<float>(addr), tlp::InvalidAccess);
}

TEST(DeviceMemory, GuardedPoisonsFreshAllocations) {
  DeviceMemory mem(MemoryMode::kGuarded);
  const auto p = mem.alloc<std::uint32_t>(2);
  EXPECT_EQ(mem.read<std::uint32_t>(p.addr(0)), 0xCDCDCDCDu);
}

TEST(DeviceMemory, DoubleFreeThrows) {
  DeviceMemory mem;
  auto p = mem.alloc<float>(8);
  const DevPtr<float> copy = p;
  mem.free(p);
  auto stale = copy;
  EXPECT_THROW(mem.free(stale), tlp::CheckError);
}

TEST(DeviceMemory, FreeOfUnknownAddressThrows) {
  DeviceMemory mem;
  (void)mem.alloc<float>(8);
  DevPtr<float> bogus{64, 8};  // never returned by alloc()
  EXPECT_THROW(mem.free(bogus), tlp::CheckError);
}

TEST(DeviceMemory, StaleViewDetectedAfterArenaGrowth) {
  DeviceMemory mem;
  const auto p = mem.alloc<std::int32_t>(4);
  auto v = mem.view(p);
  v[0] = 7;  // fresh view works
  (void)mem.alloc<std::byte>(4 << 20);  // forces the arena to grow and move
  EXPECT_THROW((void)v[0], tlp::CheckError);
  auto fresh = mem.view(p);  // re-acquired views see the data at its new home
  EXPECT_EQ(fresh[0], 7);
}

TEST(DeviceMemory, WriteRaceDetectedAtSharedAddress) {
  DeviceMemory mem(MemoryMode::kGuarded);
  const auto p = mem.alloc<float>(4);
  mem.begin_kernel("push");
  mem.note_store(p.addr(0), 4, /*warp=*/0, /*atomic=*/false);
  // Same warp again: not a race.
  EXPECT_NO_THROW(mem.note_store(p.addr(0), 4, 0, false));
  try {
    mem.note_store(p.addr(0), 4, /*warp=*/1, /*atomic=*/false);
    FAIL() << "expected WriteRace";
  } catch (const tlp::WriteRace& e) {
    EXPECT_EQ(e.kernel, "push");
    EXPECT_EQ(e.byte_addr, p.addr(0));
    EXPECT_EQ(e.warp_a, 0);
    EXPECT_EQ(e.warp_b, 1);
  }
  mem.end_kernel();
}

TEST(DeviceMemory, AtomicStoresFromDifferentWarpsAreNotARace) {
  DeviceMemory mem(MemoryMode::kGuarded);
  const auto p = mem.alloc<float>(4);
  mem.begin_kernel("reduce");
  EXPECT_NO_THROW(mem.note_store(p.addr(0), 4, 0, /*atomic=*/true));
  EXPECT_NO_THROW(mem.note_store(p.addr(0), 4, 1, /*atomic=*/true));
  // Atomic then plain from another warp is still a race.
  EXPECT_THROW(mem.note_store(p.addr(0), 4, 2, /*atomic=*/false),
               tlp::WriteRace);
  mem.end_kernel();
}

TEST(DeviceMemory, ShadowMapClearsBetweenKernels) {
  DeviceMemory mem(MemoryMode::kGuarded);
  const auto p = mem.alloc<float>(4);
  mem.begin_kernel("a");
  mem.note_store(p.addr(0), 4, 0, false);
  mem.end_kernel();
  mem.begin_kernel("b");
  // A different warp storing in a *different kernel* is fine.
  EXPECT_NO_THROW(mem.note_store(p.addr(0), 4, 1, false));
  mem.end_kernel();
}

TEST(DeviceMemory, FlipBitCorruptsStoredValue) {
  DeviceMemory mem;
  const auto p = mem.alloc<std::uint32_t>(1);
  mem.write<std::uint32_t>(p.addr(0), 0u);
  mem.flip_bit(p.addr(0), 5);
  EXPECT_EQ(mem.read<std::uint32_t>(p.addr(0)), 1u << 5);
  mem.flip_bit(p.addr(0), 5);  // flipping twice restores the value
  EXPECT_EQ(mem.read<std::uint32_t>(p.addr(0)), 0u);
}

TEST(CheckMacros, ComparisonMacrosPrintBothOperands) {
  try {
    const int rows = 3, cols = 7;
    TLP_CHECK_EQ(rows, cols);
    FAIL() << "expected CheckError";
  } catch (const tlp::CheckError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("rows == cols"), std::string::npos);
    EXPECT_NE(what.find('3'), std::string::npos);
    EXPECT_NE(what.find('7'), std::string::npos);
  }
}

}  // namespace
}  // namespace tlp::sim
