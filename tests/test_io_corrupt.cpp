// Regression tests for graph-loader hardening: malformed edge lists,
// corrupt MatrixMarket headers/bodies, and truncated binary-CSR streams must
// fail with descriptive tlp::CheckError (with line numbers for text formats)
// instead of crashing or silently mis-parsing.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "common/check.hpp"
#include "graph/io.hpp"

namespace tlp::graph {
namespace {

/// Runs `fn` expecting CheckError and returns its message.
template <class Fn>
std::string error_of(Fn&& fn) {
  try {
    fn();
  } catch (const tlp::CheckError& e) {
    return e.what();
  }
  ADD_FAILURE() << "expected tlp::CheckError";
  return {};
}

TEST(EdgeListCorrupt, MalformedLineReportsLineNumber) {
  std::istringstream in("0 1\n1 2\nnot numbers\n");
  const std::string msg = error_of([&] { (void)read_edge_list(in); });
  EXPECT_NE(msg.find("line 3"), std::string::npos) << msg;
  EXPECT_NE(msg.find("not numbers"), std::string::npos) << msg;
}

TEST(EdgeListCorrupt, CommentLinesStillCountTowardLineNumbers) {
  std::istringstream in("# header\n0 1\nbroken\n");
  const std::string msg = error_of([&] { (void)read_edge_list(in); });
  EXPECT_NE(msg.find("line 3"), std::string::npos) << msg;
}

TEST(EdgeListCorrupt, NegativeIdReportsLineNumber) {
  std::istringstream in("0 1\n-4 2\n");
  const std::string msg = error_of([&] { (void)read_edge_list(in); });
  EXPECT_NE(msg.find("negative"), std::string::npos) << msg;
  EXPECT_NE(msg.find("line 2"), std::string::npos) << msg;
}

TEST(EdgeListCorrupt, OverflowingIdRejectedNotWrapped) {
  // 2^33 would truncate to 0 if narrowed blindly into a 32-bit VertexId.
  std::istringstream in("0 8589934592\n");
  const std::string msg = error_of([&] { (void)read_edge_list(in); });
  EXPECT_NE(msg.find("overflow"), std::string::npos) << msg;
}

TEST(EdgeListCorrupt, NumVerticesTooSmallMentionsBothNumbers) {
  std::istringstream in("0 9\n");
  const std::string msg =
      error_of([&] { (void)read_edge_list(in, /*num_vertices=*/5); });
  EXPECT_NE(msg.find('5'), std::string::npos) << msg;
  EXPECT_NE(msg.find('9'), std::string::npos) << msg;
}

TEST(MatrixMarketCorrupt, MissingBanner) {
  std::istringstream in("3 3 1\n1 2\n");
  const std::string msg = error_of([&] { (void)read_matrix_market(in); });
  EXPECT_NE(msg.find("banner"), std::string::npos) << msg;
}

TEST(MatrixMarketCorrupt, MalformedSizeLine) {
  std::istringstream in("%%MatrixMarket matrix coordinate real general\nxx\n");
  const std::string msg = error_of([&] { (void)read_matrix_market(in); });
  EXPECT_NE(msg.find("size line"), std::string::npos) << msg;
  EXPECT_NE(msg.find("line 2"), std::string::npos) << msg;
}

TEST(MatrixMarketCorrupt, NonSquareRejected) {
  std::istringstream in("%%MatrixMarket matrix coordinate real general\n"
                        "3 4 1\n1 2\n");
  const std::string msg = error_of([&] { (void)read_matrix_market(in); });
  EXPECT_NE(msg.find("square"), std::string::npos) << msg;
}

TEST(MatrixMarketCorrupt, TruncatedBodyReportsProgress) {
  std::istringstream in("%%MatrixMarket matrix coordinate real general\n"
                        "3 3 5\n1 2\n2 3\n");
  const std::string msg = error_of([&] { (void)read_matrix_market(in); });
  EXPECT_NE(msg.find("truncated"), std::string::npos) << msg;
  EXPECT_NE(msg.find('5'), std::string::npos) << msg;
  EXPECT_NE(msg.find('2'), std::string::npos) << msg;
}

TEST(MatrixMarketCorrupt, OutOfRangeIndexReportsLineNumber) {
  std::istringstream in("%%MatrixMarket matrix coordinate real general\n"
                        "% a comment\n"
                        "3 3 2\n1 2\n7 1\n");
  const std::string msg = error_of([&] { (void)read_matrix_market(in); });
  EXPECT_NE(msg.find("out of range"), std::string::npos) << msg;
  EXPECT_NE(msg.find("line 5"), std::string::npos) << msg;
}

TEST(MatrixMarketCorrupt, NegativeDimensionsRejected) {
  std::istringstream in("%%MatrixMarket matrix coordinate real general\n"
                        "-3 -3 1\n1 1\n");
  const std::string msg = error_of([&] { (void)read_matrix_market(in); });
  EXPECT_NE(msg.find("negative"), std::string::npos) << msg;
}

class BinaryCsrCorrupt : public ::testing::Test {
 protected:
  /// A valid serialized 3-vertex / 2-edge graph to corrupt.
  std::string valid_bytes() {
    Csr g({0, 0, 1, 2}, {0, 1});
    std::ostringstream out(std::ios::binary);
    write_binary_csr(out, g);
    return out.str();
  }
};

TEST_F(BinaryCsrCorrupt, RoundTripStillWorks) {
  std::istringstream in(valid_bytes(), std::ios::binary);
  const Csr g = read_binary_csr(in);
  EXPECT_EQ(g.num_vertices(), 3);
  EXPECT_EQ(g.num_edges(), 2);
}

TEST_F(BinaryCsrCorrupt, BadMagicRejected) {
  std::string bytes = valid_bytes();
  bytes[0] = 'X';
  std::istringstream in(bytes, std::ios::binary);
  const std::string msg = error_of([&] { (void)read_binary_csr(in); });
  EXPECT_NE(msg.find("magic"), std::string::npos) << msg;
}

TEST_F(BinaryCsrCorrupt, EmptyStreamRejected) {
  std::istringstream in(std::string(), std::ios::binary);
  const std::string msg = error_of([&] { (void)read_binary_csr(in); });
  EXPECT_NE(msg.find("truncated"), std::string::npos) << msg;
}

TEST_F(BinaryCsrCorrupt, HeaderCutMidCountRejected) {
  std::istringstream in(valid_bytes().substr(0, 12), std::ios::binary);
  const std::string msg = error_of([&] { (void)read_binary_csr(in); });
  EXPECT_NE(msg.find("vertex count"), std::string::npos) << msg;
}

TEST_F(BinaryCsrCorrupt, TruncatedBodyReportsByteCounts) {
  const std::string bytes = valid_bytes();
  std::istringstream in(bytes.substr(0, bytes.size() - 4), std::ios::binary);
  const std::string msg = error_of([&] { (void)read_binary_csr(in); });
  EXPECT_NE(msg.find("truncated"), std::string::npos) << msg;
  EXPECT_NE(msg.find("indices"), std::string::npos) << msg;
}

TEST_F(BinaryCsrCorrupt, NegativeCountsRejected) {
  std::string bytes = valid_bytes();
  // The vertex count is the little-endian int64 at offset 8; make it huge
  // and negative by setting the sign byte.
  bytes[15] = static_cast<char>(0x80);
  std::istringstream in(bytes, std::ios::binary);
  const std::string msg = error_of([&] { (void)read_binary_csr(in); });
  EXPECT_NE(msg.find("negative"), std::string::npos) << msg;
}

TEST_F(BinaryCsrCorrupt, CorruptIndicesCaughtByValidation) {
  std::string bytes = valid_bytes();
  // The last 4 bytes are indices[1]; point it at vertex 200 of a 3-vertex
  // graph. Csr's constructor validation must reject it.
  bytes[bytes.size() - 4] = static_cast<char>(200);
  std::istringstream in(bytes, std::ios::binary);
  EXPECT_THROW((void)read_binary_csr(in), tlp::CheckError);
}

}  // namespace
}  // namespace tlp::graph
