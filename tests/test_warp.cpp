// Tests for the warp-level memory model: coalescing (sector counting),
// cache-aware traffic accounting, atomic conflict serialization, and the
// warp collectives.
#include <gtest/gtest.h>

#include "sim/warp.hpp"

namespace tlp::sim {
namespace {

struct WarpFixture : ::testing::Test {
  WarpFixture() : sys(GpuSpec::v100()) {
    sys.rec = &rec;
    data = sys.mem.alloc<float>(1 << 20);
    auto v = sys.mem.view(data);
    for (std::size_t i = 0; i < v.size(); ++i)
      v[i] = static_cast<float>(i);
  }

  WVec<std::int64_t> iota(std::int64_t base, std::int64_t stride = 1) {
    WVec<std::int64_t> idx{};
    for (int l = 0; l < kWarpSize; ++l)
      idx[static_cast<std::size_t>(l)] = base + l * stride;
    return idx;
  }

  MemorySystem sys;
  KernelRecord rec;
  DevPtr<float> data;
};

TEST_F(WarpFixture, CoalescedLoadIsFourSectors) {
  WarpCtx w(sys, 0);
  const auto out = w.load_f32(data, iota(0), kFullMask);
  EXPECT_EQ(rec.requests, 1);
  EXPECT_EQ(rec.sectors, 4);  // 32 floats = 128 B = 4 x 32 B sectors
  EXPECT_FLOAT_EQ(out[5], 5.0f);
}

TEST_F(WarpFixture, ScatteredLoadIsThirtyTwoSectors) {
  WarpCtx w(sys, 0);
  (void)w.load_f32(data, iota(0, 128), kFullMask);  // 512 B stride
  EXPECT_EQ(rec.requests, 1);
  EXPECT_EQ(rec.sectors, 32);
}

TEST_F(WarpFixture, ScalarLoadIsOneSector) {
  WarpCtx w(sys, 0);
  EXPECT_FLOAT_EQ(w.load_scalar_f32(data, 77), 77.0f);
  EXPECT_EQ(rec.sectors, 1);
}

TEST_F(WarpFixture, MaskLimitsSectors) {
  WarpCtx w(sys, 0);
  (void)w.load_f32(data, iota(0), lanes_below(8));  // 8 floats = 1 sector
  EXPECT_EQ(rec.sectors, 1);
}

TEST_F(WarpFixture, EmptyMaskIsFree) {
  WarpCtx w(sys, 0);
  (void)w.load_f32(data, iota(0), 0);
  EXPECT_EQ(rec.requests, 0);
  EXPECT_DOUBLE_EQ(w.total_cycles(), 0.0);
}

TEST_F(WarpFixture, RepeatLoadHitsL1AndSkipsTraffic) {
  WarpCtx w(sys, 0);
  (void)w.load_f32(data, iota(0), kFullMask);
  const auto cold_bytes = rec.bytes_load;
  EXPECT_EQ(cold_bytes, 4 * 32);
  (void)w.load_f32(data, iota(0), kFullMask);
  EXPECT_EQ(rec.bytes_load, cold_bytes);  // L1 hit: no L2 traffic
  EXPECT_EQ(rec.l1_hits, 1);
}

TEST_F(WarpFixture, DifferentSmHasOwnL1) {
  WarpCtx w0(sys, 0);
  (void)w0.load_f32(data, iota(0), kFullMask);
  WarpCtx w1(sys, 1);
  (void)w1.load_f32(data, iota(0), kFullMask);
  EXPECT_EQ(rec.l1_hits, 0);   // different SM's L1 is cold
  EXPECT_EQ(rec.l2_hits, 1);   // but the shared L2 hits
}

TEST_F(WarpFixture, L2HitIsCheaperThanDram) {
  WarpCtx w0(sys, 0);
  (void)w0.load_f32(data, iota(0), kFullMask);
  const double dram_cost = w0.mem_cycles();
  WarpCtx w1(sys, 1);
  (void)w1.load_f32(data, iota(0), kFullMask);
  EXPECT_LT(w1.mem_cycles(), dram_cost);
}

TEST_F(WarpFixture, StoreWritesDataAndCountsTraffic) {
  WarpCtx w(sys, 0);
  WVec<float> vals{};
  for (int l = 0; l < kWarpSize; ++l) vals[static_cast<std::size_t>(l)] = 2.5f;
  w.store_f32(data, iota(64), vals, kFullMask);
  EXPECT_FLOAT_EQ(sys.mem.view(data)[64], 2.5f);
  EXPECT_EQ(rec.bytes_store, 4 * 32);
}

TEST_F(WarpFixture, AtomicAddAppliesAllLanes) {
  WarpCtx w(sys, 0);
  WVec<std::int64_t> idx{};  // all lanes hit index 0
  WVec<float> vals{};
  for (int l = 0; l < kWarpSize; ++l) vals[static_cast<std::size_t>(l)] = 1.0f;
  sys.mem.view(data)[0] = 0.0f;
  w.atomic_add_f32(data, idx, vals, kFullMask);
  EXPECT_FLOAT_EQ(sys.mem.view(data)[0], 32.0f);
  EXPECT_EQ(rec.atomic_ops, 32);
  EXPECT_GT(rec.bytes_atomic, 0);
}

TEST_F(WarpFixture, AtomicConflictsSerialize) {
  WarpCtx conflict(sys, 0);
  WVec<std::int64_t> same{};  // 32-way conflict
  WVec<float> vals{};
  conflict.atomic_add_f32(data, same, vals, kFullMask);
  const double conflict_cost = conflict.mem_cycles();

  WarpCtx spread(sys, 0);
  spread.atomic_add_f32(data, iota(1024), vals, kFullMask);
  EXPECT_GT(conflict_cost, spread.mem_cycles() + 30 * 31);
}

TEST_F(WarpFixture, AtomicMaxApplies) {
  WarpCtx w(sys, 0);
  WVec<std::int64_t> idx{};
  WVec<float> vals{};
  vals[3] = 99.0f;
  sys.mem.view(data)[0] = 1.0f;
  w.atomic_max_f32(data, idx, vals, kFullMask);
  EXPECT_FLOAT_EQ(sys.mem.view(data)[0], 99.0f);
}

TEST_F(WarpFixture, AtomicU32FetchAdd) {
  auto ctr = sys.mem.alloc<std::uint32_t>(1);
  sys.mem.view(ctr)[0] = 5;
  WarpCtx w(sys, 0);
  EXPECT_EQ(w.atomic_add_u32(ctr, 0, 3), 5u);
  EXPECT_EQ(sys.mem.view(ctr)[0], 8u);
}

TEST_F(WarpFixture, AtomicsBypassL1) {
  WarpCtx w(sys, 0);
  (void)w.load_f32(data, iota(0), kFullMask);  // line now in L1
  const auto l1_before = rec.l1_accesses;
  WVec<float> vals{};
  w.atomic_add_f32(data, iota(0), vals, kFullMask);
  EXPECT_EQ(rec.l1_accesses, l1_before);  // atomic did not touch L1
}

TEST_F(WarpFixture, ReduceSumAndMax) {
  WarpCtx w(sys, 0);
  WVec<float> v{};
  for (int l = 0; l < kWarpSize; ++l)
    v[static_cast<std::size_t>(l)] = static_cast<float>(l);
  EXPECT_FLOAT_EQ(w.reduce_sum(v, kFullMask), 496.0f);
  EXPECT_FLOAT_EQ(w.reduce_max(v, kFullMask), 31.0f);
  EXPECT_FLOAT_EQ(w.reduce_sum(v, lanes_below(4)), 6.0f);
  EXPECT_GT(w.issue_cycles(), 0.0);
}

TEST_F(WarpFixture, ChargeAluAccumulates) {
  WarpCtx w(sys, 0);
  w.charge_alu(3);
  w.charge_alu();
  EXPECT_DOUBLE_EQ(w.issue_cycles(), 4.0);
}

TEST_F(WarpFixture, CacheModelCanBeDisabled) {
  sys.model_caches = false;
  WarpCtx w(sys, 0);
  (void)w.load_f32(data, iota(0), kFullMask);
  (void)w.load_f32(data, iota(0), kFullMask);
  EXPECT_EQ(rec.l1_accesses, 0);
  // Without caches every sector is compulsory traffic.
  EXPECT_EQ(rec.bytes_load, 2 * 4 * 32);
}

TEST(LaneHelpers, Masks) {
  EXPECT_EQ(lanes_below(0), 0u);
  EXPECT_EQ(lanes_below(1), 1u);
  EXPECT_EQ(lanes_below(32), kFullMask);
  EXPECT_TRUE(lane_active(0b100, 2));
  EXPECT_FALSE(lane_active(0b100, 1));
}

}  // namespace
}  // namespace tlp::sim
