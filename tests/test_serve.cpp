// Tests for the resilient serving runtime (src/serve, DESIGN.md §11):
// deterministic traffic synthesis, admission control and deadlines, the
// retry/degrade ladder under injected fault storms, batching bit-identity,
// the circuit breaker, and SLO-report accounting.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <map>
#include <string>

#include "common/check.hpp"
#include "graph/generators.hpp"
#include "serve/server.hpp"
#include "sim/device.hpp"
#include "systems/partitioned.hpp"

namespace tlp::serve {
namespace {

using graph::Csr;
using tensor::Tensor;

struct World {
  Csr g;
  Tensor feat;
  models::ConvSpec spec;
};

World make_world(std::uint64_t seed = 7, graph::VertexId n = 400,
                 std::int64_t m = 2400, std::int64_t f = 8) {
  Rng rng(seed);
  World w;
  w.g = graph::power_law(n, m, 2.3, rng);
  w.feat = Tensor::random(w.g.num_vertices(), f, rng);
  w.spec = models::ConvSpec::make(models::ModelKind::kGcn, f, rng);
  return w;
}

TrafficOptions small_traffic(std::int64_t n = 24) {
  TrafficOptions t;
  t.num_requests = n;
  t.mean_interarrival_ms = 0.5;
  t.hops = 1;
  t.max_ego_vertices = 64;
  t.seed = 99;
  return t;
}

ServerOptions small_server() {
  ServerOptions s;
  s.queue_capacity = 16;
  s.max_batch = 4;
  s.batch_window_ms = 1.0;
  return s;
}

bool same_bits(const std::vector<float>& a, const std::vector<float>& b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0;
}

// --- traffic ---------------------------------------------------------------

TEST(Traffic, DeterministicFromSeed) {
  const World w = make_world();
  const auto a = generate_traffic(w.g, w.feat, small_traffic());
  const auto b = generate_traffic(w.g, w.feat, small_traffic());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].query, b[i].query);
    EXPECT_EQ(a[i].arrival_ms, b[i].arrival_ms);  // bitwise, not approx
    EXPECT_EQ(a[i].ego.to_global, b[i].ego.to_global);
    EXPECT_EQ(a[i].feat, b[i].feat);
  }
  TrafficOptions other = small_traffic();
  other.seed = 100;
  const auto c = generate_traffic(w.g, w.feat, other);
  bool any_diff = false;
  for (std::size_t i = 0; i < a.size(); ++i)
    any_diff |= a[i].query != c[i].query || a[i].arrival_ms != c[i].arrival_ms;
  EXPECT_TRUE(any_diff) << "different seeds produced identical traffic";
}

TEST(Traffic, ArrivalsAreMonotonicAndQueriesInRange) {
  const World w = make_world();
  const auto reqs = generate_traffic(w.g, w.feat, small_traffic(64));
  double prev = 0;
  for (const Request& r : reqs) {
    EXPECT_GE(r.arrival_ms, prev);
    prev = r.arrival_ms;
    EXPECT_GE(r.query, 0);
    EXPECT_LT(r.query, w.g.num_vertices());
    // The query vertex is inside its own ego subgraph at query_local.
    ASSERT_LT(static_cast<std::size_t>(r.query_local),
              r.ego.to_global.size());
    EXPECT_EQ(r.ego.to_global[static_cast<std::size_t>(r.query_local)],
              r.query);
    EXPECT_EQ(r.feat.rows(), r.ego.csr.num_vertices());
  }
}

TEST(Traffic, ZipfSkewsPopularity) {
  const World w = make_world();
  TrafficOptions t = small_traffic(256);
  t.zipf_alpha = 1.2;
  const auto reqs = generate_traffic(w.g, w.feat, t);
  std::map<graph::VertexId, int> hist;
  for (const Request& r : reqs) ++hist[r.query];
  int hottest = 0;
  for (const auto& [v, c] : hist) hottest = std::max(hottest, c);
  // 256 uniform draws over 400 vertices would make a count of 8+ for any
  // single vertex vanishingly unlikely; Zipf 1.2 concentrates far harder.
  EXPECT_GE(hottest, 8);
}

TEST(Traffic, EgoSubgraphRespectsCapAndHops) {
  const World w = make_world();
  const graph::LocalGraph ego = ego_subgraph(w.g, 5, 2, 10);
  EXPECT_LE(ego.csr.num_vertices(), 10);
  const graph::LocalGraph zero_hop = ego_subgraph(w.g, 5, 0, 10);
  EXPECT_EQ(zero_hop.csr.num_vertices(), 1);
  EXPECT_EQ(zero_hop.to_global[0], 5);
  EXPECT_THROW((void)ego_subgraph(w.g, -1, 1, 10), CheckError);
  EXPECT_THROW((void)ego_subgraph(w.g, w.g.num_vertices(), 1, 10), CheckError);
  EXPECT_THROW((void)ego_subgraph(w.g, 5, -1, 10), CheckError);
  EXPECT_THROW((void)ego_subgraph(w.g, 5, 1, 0), CheckError);
}

// Regression (ISSUE 10): the seeded permutation must re-derive identically
// at the degenerate vertex counts. n == 1 has zero Fisher–Yates swaps but
// every draw still consumes its one variate and returns vertex 0.
TEST(Traffic, QueryStreamSingleVertexIsStable) {
  for (const double alpha : {0.0, 0.8}) {
    Rng rng_a(99), rng_b(99);
    const QueryStream a(1, alpha, rng_a);
    const QueryStream b(1, alpha, rng_b);
    EXPECT_EQ(a.num_vertices(), 1);
    EXPECT_EQ(b.num_vertices(), 1);
    Rng draws(7);
    for (int i = 0; i < 16; ++i) EXPECT_EQ(a.draw(draws), 0);
    // Construction consumed identical rng state for both streams.
    EXPECT_EQ(rng_a.next_below(1u << 20), rng_b.next_below(1u << 20));
  }
}

// Regression (ISSUE 10): an empty vertex set constructs (consuming zero rng
// draws, so downstream seed sequences are unperturbed) but draw() fails a
// check in every build mode instead of hitting the empty-range UB of
// Rng::next_below(0).
TEST(Traffic, QueryStreamEmptyVertexSetConstructsButCannotDraw) {
  Rng rng(3);
  const QueryStream empty(0, 0.8, rng);
  EXPECT_EQ(empty.num_vertices(), 0);
  Rng draws(7);
  EXPECT_THROW((void)empty.draw(draws), CheckError);
  // Construction left the caller's rng untouched.
  Rng fresh(3);
  EXPECT_EQ(rng.next_below(1u << 20), fresh.next_below(1u << 20));
  // Negative counts stay rejected.
  Rng neg(3);
  EXPECT_THROW(QueryStream(-1, 0.8, neg), CheckError);
}

// --- serving: happy path ---------------------------------------------------

TEST(Server, FaultFreeServesEverythingOk) {
  const World w = make_world();
  const auto traffic = generate_traffic(w.g, w.feat, small_traffic());
  Server server(small_server());
  const ServeResult res = server.run(traffic, w.spec);
  ASSERT_EQ(res.responses.size(), traffic.size());
  EXPECT_EQ(res.report.ok, res.report.total);
  EXPECT_EQ(res.report.retried, 0);
  EXPECT_EQ(res.report.degraded, 0);
  EXPECT_EQ(res.report.rejected, 0);
  EXPECT_EQ(res.report.failed, 0);
  EXPECT_EQ(res.report.unaccounted, 0);
  EXPECT_GT(res.report.p50_ms, 0);
  EXPECT_GE(res.report.p99_ms, res.report.p50_ms);
  for (const Response& r : res.responses) {
    EXPECT_TRUE(r.served());
    EXPECT_EQ(r.direct_attempts, 1);
    EXPECT_FALSE(r.output.empty());
    EXPECT_GE(r.latency_ms, 0);
  }
}

TEST(Server, BatchCompositionDoesNotChangeServedBits) {
  const World w = make_world();
  const auto traffic = generate_traffic(w.g, w.feat, small_traffic());
  ServerOptions one = small_server();
  one.max_batch = 1;
  ServerOptions eight = small_server();
  eight.max_batch = 8;
  Server sa(one);
  Server sb(eight);
  const ServeResult ra = sa.run(traffic, w.spec);
  const ServeResult rb = sb.run(traffic, w.spec);
  for (std::size_t i = 0; i < traffic.size(); ++i) {
    ASSERT_TRUE(ra.responses[i].served());
    ASSERT_TRUE(rb.responses[i].served());
    EXPECT_TRUE(same_bits(ra.responses[i].output, rb.responses[i].output))
        << "request " << i << " served bits depend on batch size";
  }
}

// --- admission control and deadlines ---------------------------------------

TEST(Server, BoundedQueueShedsOverload) {
  const World w = make_world();
  TrafficOptions t = small_traffic(64);
  t.arrival = ArrivalProcess::kBursty;
  t.burst_len = 32;
  t.burst_speedup = 64.0;
  t.mean_interarrival_ms = 1.0;
  const auto traffic = generate_traffic(w.g, w.feat, t);
  ServerOptions s = small_server();
  s.queue_capacity = 4;
  s.max_batch = 2;
  Server server(s);
  const ServeResult res = server.run(traffic, w.spec);
  EXPECT_GT(res.report.rejected, 0) << "a 4-deep queue must shed this burst";
  EXPECT_EQ(res.report.unaccounted, 0);
  for (const Response& r : res.responses) {
    if (r.outcome == Outcome::kRejected) {
      EXPECT_TRUE(r.output.empty());
      EXPECT_FALSE(r.error.empty());
    }
  }
}

TEST(Server, DeadlinesShedStaleQueuedRequests) {
  const World w = make_world();
  TrafficOptions t = small_traffic(48);
  t.arrival = ArrivalProcess::kBursty;
  t.burst_len = 24;
  t.burst_speedup = 64.0;
  t.deadline_ms = 2.0;
  const auto traffic = generate_traffic(w.g, w.feat, t);
  ServerOptions s = small_server();
  s.max_batch = 2;
  Server server(s);
  const ServeResult res = server.run(traffic, w.spec);
  std::int64_t expired = 0;
  for (const Response& r : res.responses) {
    if (r.outcome == Outcome::kRejected && r.deadline_missed) ++expired;
  }
  EXPECT_GT(expired, 0) << "a 2ms deadline must expire deep-queued requests";
  EXPECT_EQ(res.report.unaccounted, 0);
}

// --- fault storms: retry, degrade, fail ------------------------------------

/// Regression: a 2-failure OOM burst is absorbed by direct retries.
TEST(Server, ShortOomBurstIsRetriedBitIdentically) {
  const World w = make_world();
  const auto traffic = generate_traffic(w.g, w.feat, small_traffic(32));
  ServerOptions s = small_server();
  StormEvent storm;
  storm.at_request = 8;
  storm.plan.oom_every = 200;
  storm.plan.oom_burst_len = 2;
  s.storms = {storm};
  Server server(s);
  const ServeResult res = server.run(traffic, w.spec);
  EXPECT_GT(res.report.retried, 0);
  EXPECT_EQ(res.report.failed, 0);
  EXPECT_EQ(res.report.unaccounted, 0);

  Server clean(small_server());
  const ServeResult base = clean.run(traffic, w.spec);
  for (std::size_t i = 0; i < traffic.size(); ++i) {
    ASSERT_TRUE(res.responses[i].served());
    EXPECT_TRUE(same_bits(res.responses[i].output, base.responses[i].output))
        << "request " << i;
  }
}

/// Regression with a checked-in seed (world 7 / traffic 99): a 4-deep OOM
/// burst exhausts the direct ladder (1 batched + 2 retry attempts) and lands
/// on the partitioned fallback, whose output must be bit-identical both to
/// the fault-free serve AND to running systems::run_partitioned directly on
/// the request's ego subgraph.
TEST(Server, RepeatedOomDegradesToPartitionedBitIdentically) {
  const World w = make_world(7);
  const auto traffic = generate_traffic(w.g, w.feat, small_traffic(32));
  ServerOptions s = small_server();
  StormEvent storm;
  storm.at_request = 8;
  storm.plan.oom_every = 200;
  storm.plan.oom_burst_len = 4;
  s.storms = {storm};
  Server server(s);
  const ServeResult res = server.run(traffic, w.spec);
  EXPECT_GT(res.report.degraded, 0) << "4-deep burst must force the fallback";
  EXPECT_EQ(res.report.failed, 0);
  EXPECT_EQ(res.report.unaccounted, 0);

  Server clean(small_server());
  const ServeResult base = clean.run(traffic, w.spec);

  bool checked_direct = false;
  for (std::size_t i = 0; i < traffic.size(); ++i) {
    const Response& r = res.responses[i];
    ASSERT_TRUE(r.served());
    EXPECT_TRUE(same_bits(r.output, base.responses[i].output))
        << "request " << i;
    if (r.outcome != Outcome::kDegraded) continue;
    EXPECT_GT(r.fallback_attempts, 0);
    EXPECT_GE(r.partitions, 2);
    // The served row equals a direct partitioned run over the same subgraph
    // with the same part count.
    const Request& req = traffic[i];
    systems::TlpgnnSystem sys;
    sim::Device dev;
    const systems::RunResult direct = systems::run_partitioned(
        sys, dev, req.ego.csr, req.feat, w.spec, r.partitions);
    const auto row = direct.output.row(req.query_local);
    ASSERT_EQ(static_cast<std::size_t>(row.size()), r.output.size());
    EXPECT_EQ(std::memcmp(row.data(), r.output.data(),
                          r.output.size() * sizeof(float)),
              0)
        << "degraded row differs from a direct run_partitioned";
    checked_direct = true;
  }
  EXPECT_TRUE(checked_direct);
}

TEST(Server, UnrecoverableStormFailsWithProvenance) {
  const World w = make_world();
  const auto traffic = generate_traffic(w.g, w.feat, small_traffic(16));
  ServerOptions s = small_server();
  s.fallback.enabled = false;  // no ladder below direct retries
  StormEvent storm;
  storm.at_request = 4;
  storm.plan.launch_every = 4;
  storm.plan.launch_burst_len = 4;  // period == burst: every launch fails
  s.storms = {storm};
  Server server(s);
  const ServeResult res = server.run(traffic, w.spec);
  EXPECT_GT(res.report.failed, 0);
  EXPECT_EQ(res.report.unaccounted, 0);
  bool saw_provenance = false;
  for (const Response& r : res.responses) {
    if (r.outcome != Outcome::kFailed) continue;
    // Every Failed response explains itself: either the injected-fault
    // provenance from the last attempt, or the breaker-skip message when the
    // open circuit let no attempt run at all.
    EXPECT_FALSE(r.error.empty()) << "request " << r.id;
    if (r.error.find("launch_every") != std::string::npos) {
      EXPECT_NE(r.error.find("injected"), std::string::npos) << r.error;
      saw_provenance = true;
    } else {
      EXPECT_NE(r.error.find("circuit breaker"), std::string::npos) << r.error;
    }
  }
  EXPECT_TRUE(saw_provenance)
      << "no Failed response carried FaultPlan provenance";
}

TEST(Server, StormRecoveryRestoresOkService) {
  const World w = make_world();
  const auto traffic = generate_traffic(w.g, w.feat, small_traffic(48));
  ServerOptions s = small_server();
  StormEvent on;
  on.at_request = 8;
  on.plan.oom_every = 100;
  on.plan.oom_burst_len = 3;
  s.storms = {on, {24, sim::FaultPlan{}}};  // disarm at request 24
  Server server(s);
  const ServeResult res = server.run(traffic, w.spec);
  EXPECT_EQ(res.report.unaccounted, 0);
  // Everything after the disarm point is served clean on the first attempt.
  for (std::size_t i = 24; i < traffic.size(); ++i) {
    EXPECT_EQ(res.responses[i].outcome, Outcome::kOk) << "request " << i;
  }
}

// --- determinism and reporting ---------------------------------------------

TEST(Server, StormReplayIsByteIdentical) {
  const World w = make_world();
  const auto traffic = generate_traffic(w.g, w.feat, small_traffic(32));
  ServerOptions s = small_server();
  StormEvent storm;
  storm.at_request = 6;
  storm.plan.oom_every = 64;
  storm.plan.oom_burst_len = 4;
  s.storms = {storm};
  Server a(s);
  Server b(s);
  const ServeResult ra = a.run(traffic, w.spec);
  const ServeResult rb = b.run(traffic, w.spec);
  EXPECT_EQ(ra.report.to_json().dump(), rb.report.to_json().dump());
  for (std::size_t i = 0; i < traffic.size(); ++i) {
    EXPECT_EQ(ra.responses[i].outcome, rb.responses[i].outcome);
    EXPECT_EQ(ra.responses[i].latency_ms, rb.responses[i].latency_ms);
    EXPECT_TRUE(same_bits(ra.responses[i].output, rb.responses[i].output));
  }
  EXPECT_EQ(ra.report.output_digest, rb.report.output_digest);
}

TEST(Server, SloReportAccountsForEveryRequest) {
  const World w = make_world();
  TrafficOptions t = small_traffic(64);
  t.arrival = ArrivalProcess::kBursty;
  t.burst_len = 16;
  t.burst_speedup = 32.0;
  t.deadline_ms = 5.0;
  const auto traffic = generate_traffic(w.g, w.feat, t);
  ServerOptions s = small_server();
  s.queue_capacity = 8;
  s.max_batch = 2;
  StormEvent storm;
  storm.at_request = 10;
  storm.plan.oom_every = 50;
  storm.plan.oom_burst_len = 3;
  s.storms = {storm};
  Server server(s);
  const ServeResult res = server.run(traffic, w.spec);
  const SloReport& r = res.report;
  EXPECT_EQ(r.total, 64);
  EXPECT_EQ(r.ok + r.retried + r.degraded + r.rejected + r.failed, r.total);
  EXPECT_EQ(r.unaccounted, 0);
  const report::Json j = r.to_json();
  EXPECT_EQ(j.at("total").as_int(), 64);
  EXPECT_EQ(j.at("unaccounted").as_int(), 0);
}

TEST(Server, RejectsMalformedInputs) {
  const World w = make_world();
  ServerOptions bad = small_server();
  bad.queue_capacity = 0;
  EXPECT_THROW(Server{bad}, CheckError);
  bad = small_server();
  bad.max_batch = 32;  // larger than the queue bound
  bad.queue_capacity = 8;
  EXPECT_THROW(Server{bad}, CheckError);
  bad = small_server();
  bad.storms = {{10, sim::FaultPlan{}}, {4, sim::FaultPlan{}}};  // unsorted
  EXPECT_THROW(Server{bad}, CheckError);

  Server server(small_server());
  models::ConvSpec weighted = w.spec;
  weighted.edge_weights.assign(static_cast<std::size_t>(w.g.num_edges()),
                               1.0f);
  const auto traffic = generate_traffic(w.g, w.feat, small_traffic(2));
  EXPECT_THROW((void)server.run(traffic, weighted), CheckError);
}

// --- policies ---------------------------------------------------------------

TEST(RetryPolicy, BackoffGrowsExponentiallyWithBoundedJitter) {
  RetryPolicy p;
  p.base_delay_ms = 1.0;
  p.multiplier = 2.0;
  p.jitter_frac = 0.25;
  Rng rng(3);
  for (int retry = 0; retry < 5; ++retry) {
    const double nominal = std::pow(2.0, retry);
    for (int trial = 0; trial < 16; ++trial) {
      const double d = p.delay_ms(retry, rng);
      EXPECT_GE(d, nominal * 0.75);
      EXPECT_LE(d, nominal * 1.25);
    }
  }
  p.jitter_frac = 0;
  EXPECT_EQ(p.delay_ms(2, rng), 4.0);  // exact without jitter
}

TEST(CircuitBreaker, OpensAfterThresholdAndRecloses) {
  BreakerPolicy pol;
  pol.failure_threshold = 3;
  pol.cooldown_ms = 10.0;
  CircuitBreaker br(pol);
  EXPECT_TRUE(br.allow(0));
  br.record_failure(1);
  br.record_failure(2);
  EXPECT_EQ(br.state(), CircuitBreaker::State::kClosed);
  br.record_failure(3);
  EXPECT_EQ(br.state(), CircuitBreaker::State::kOpen);
  EXPECT_EQ(br.opens(), 1);
  EXPECT_FALSE(br.allow(4));        // cooling down
  EXPECT_TRUE(br.allow(13.5));      // cooldown elapsed -> half-open trial
  EXPECT_EQ(br.state(), CircuitBreaker::State::kHalfOpen);
  br.record_failure(14);            // trial failed -> straight back open
  EXPECT_EQ(br.state(), CircuitBreaker::State::kOpen);
  EXPECT_EQ(br.opens(), 2);
  EXPECT_FALSE(br.allow(20));
  EXPECT_TRUE(br.allow(24.5));
  br.record_success();              // trial succeeded -> closed
  EXPECT_EQ(br.state(), CircuitBreaker::State::kClosed);
  EXPECT_TRUE(br.allow(25));
}

TEST(Outcomes, NamesAreStable) {
  EXPECT_STREQ(outcome_name(Outcome::kOk), "ok");
  EXPECT_STREQ(outcome_name(Outcome::kRetried), "retried");
  EXPECT_STREQ(outcome_name(Outcome::kDegraded), "degraded");
  EXPECT_STREQ(outcome_name(Outcome::kRejected), "rejected");
  EXPECT_STREQ(outcome_name(Outcome::kFailed), "failed");
}

}  // namespace
}  // namespace tlp::serve
