// Tests for the tlpfuzz harness itself: the fuzz loop is deterministic and
// clean on the healthy tree, the --expect-bugs battery catches every seeded
// mutant, the minimizer shrinks failures to tiny graphs, and repro files
// round-trip bit-exactly.
#include <gtest/gtest.h>

#include <string>

#include "fuzz/case_gen.hpp"
#include "fuzz/fuzz.hpp"
#include "fuzz/kernel_runners.hpp"
#include "fuzz/minimize.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "graph/stats.hpp"

namespace tlp::fuzz {
namespace {

TEST(CaseGen, DeterministicPerSeed) {
  Rng s1(0xabcd), s2(0xabcd);
  const CaseSpec a = generate_case(1, s1);
  const CaseSpec b = generate_case(1, s2);
  const CaseSpec c = generate_case(2, s1);  // next draw from the stream
  EXPECT_EQ(a.summary(), b.summary());
  EXPECT_EQ(a.seed, b.seed);
  EXPECT_NE(a.seed, c.seed);
  const graph::Csr ga = build_graph(a);
  const graph::Csr gb = build_graph(b);
  EXPECT_EQ(graph::fingerprint(ga), graph::fingerprint(gb));
}

TEST(FuzzLoop, SmallRunIsCleanAndDeterministic) {
  FuzzOptions opts;
  opts.seed = 7;
  opts.iters = 20;
  const FuzzReport r1 = run_fuzz(opts);
  EXPECT_TRUE(r1.ok()) << report_to_json(r1);
  EXPECT_EQ(r1.cases_run, 20u);
  EXPECT_GT(r1.oracle_checks, 0u);
  EXPECT_GT(r1.coverage_signatures, 0u);

  const FuzzReport r2 = run_fuzz(opts);
  EXPECT_EQ(r1.oracle_checks, r2.oracle_checks);
  EXPECT_EQ(r1.coverage_signatures, r2.coverage_signatures);
  EXPECT_EQ(r1.corpus_size, r2.corpus_size);
}

TEST(FuzzLoop, ReportSerializesToJson) {
  FuzzOptions opts;
  opts.seed = 9;
  opts.iters = 3;
  const std::string json = report_to_json(run_fuzz(opts));
  EXPECT_NE(json.find("\"cases_run\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"failures\""), std::string::npos);
}

TEST(ExpectBugs, EverySeededMutantIsCaught) {
  const ExpectBugsReport rep = run_expect_bugs(600);
  EXPECT_EQ(rep.mutants.size(), mutant_runners().size());
  EXPECT_TRUE(rep.all_caught());
  for (const auto& m : rep.mutants) {
    EXPECT_TRUE(m.caught) << m.name << " escaped the oracle battery";
    EXPECT_FALSE(m.caught_by.empty()) << m.name;
  }
}

TEST(ExpectBugs, RowBoundMutantMinimizesTiny) {
  // The ISSUE acceptance bar: the broken row-bounds kernel's failing graph
  // must shrink to <= 8 vertices.
  const ExpectBugsReport rep = run_expect_bugs(600);
  bool found = false;
  for (const auto& m : rep.mutants) {
    if (m.name.find("rowbound") == std::string::npos) continue;
    found = true;
    ASSERT_TRUE(m.caught);
    EXPECT_GT(m.minimized_vertices, 0);
    EXPECT_LE(m.minimized_vertices, 8);
  }
  EXPECT_TRUE(found) << "no row-bound mutant registered";
}

TEST(Minimizer, ShrinksToMinimalWitness) {
  // Predicate: some vertex has in-degree >= 2. The minimal witness is three
  // vertices and two edges; ddmin must find exactly that from a 64-star.
  const auto pred = [](const graph::Csr& g) {
    for (graph::VertexId v = 0; v < g.num_vertices(); ++v) {
      if (g.degree(v) >= 2) return true;
    }
    return false;
  };
  const MinimizeResult r = minimize_graph(graph::star(64), pred);
  EXPECT_EQ(r.start_vertices, 64);
  EXPECT_TRUE(pred(r.graph));
  EXPECT_EQ(r.graph.num_vertices(), 3);
  EXPECT_EQ(r.graph.num_edges(), 2);
  EXPECT_GT(r.evals, 0u);
}

TEST(Minimizer, ReproRoundTripsBitExactly) {
  // Isolated tail vertices must survive the file format (the "# vertices"
  // header), since zero-degree vertices are exactly what several seeded bugs
  // need to reproduce.
  using graph::Edge;
  const graph::Csr g =
      graph::build_csr(9, {Edge{0, 1}, Edge{3, 1}, Edge{1, 3}});
  const std::string path = ::testing::TempDir() + "tlpfuzz_repro_rt.el";
  write_repro(path, g);
  const graph::Csr back = load_repro(path);
  EXPECT_EQ(back.num_vertices(), 9);
  EXPECT_EQ(graph::fingerprint(back), graph::fingerprint(g));
}

TEST(CaseGen, RingDegreeClampedAfterShrink) {
  // Regression for a crash found by a 6000-iteration campaign (seed 2026,
  // cases 4445 and 5297): mutate_case's grow/shrink arm rescales n but not
  // m, and for rings m is the lattice degree k — a shrunk ring could reach
  // build_graph with k >= n and trip regular_ring's `k < n` CHECK.
  CaseSpec c;
  c.shape = GraphShape::kRing;
  c.n = 2;
  c.m = 2;  // k == n: invalid for regular_ring, must be clamped to n-1
  const graph::Csr g = build_graph(c);
  EXPECT_EQ(g.num_vertices(), 2);
  EXPECT_EQ(g.num_edges(), 2);  // 1-regular ring on 2 vertices

  c.n = 7;
  c.m = 8;  // k > n (the second campaign failure)
  const graph::Csr g2 = build_graph(c);
  EXPECT_EQ(g2.num_vertices(), 7);
  EXPECT_EQ(g2.num_edges(), 7 * 6);  // clamped to the densest valid ring

  c.m = 0;  // degenerate low side: clamp up to k = 1
  EXPECT_EQ(build_graph(c).num_edges(), 7);
}

TEST(CaseGen, ChainWithOneVertexClampedToMinimalPath) {
  // Same campaign, case 1324: draw_shape_dims rolls chain n in [1, 200] but
  // graph::path requires n >= 2. The clamp lives in build_graph so the fuzz
  // stream itself stays bit-identical for a fixed seed.
  CaseSpec c;
  c.shape = GraphShape::kChain;
  c.n = 1;
  const graph::Csr g = build_graph(c);
  EXPECT_EQ(g.num_vertices(), 2);
  EXPECT_EQ(g.num_edges(), 1);
}

TEST(Repro, CheckedInRingReproReplaysClean) {
  // The minimal witness of the ring-shrink crash, checked in under repros/.
  // The crash fired before a graph existed, so the ddmin minimizer never
  // ran on it; this file is the clamped case's graph at the smallest legal
  // ring (n=2, k=1) and pins the repro workflow end to end.
  const FuzzReport rep =
      run_repro(std::string(TLP_SOURCE_DIR) + "/repros/case_4445_ring_shrink.el",
                {});
  EXPECT_TRUE(rep.ok());
}

TEST(Repro, ReplayRunsAllModels) {
  using graph::Edge;
  const graph::Csr g = graph::build_csr(4, {Edge{0, 1}, Edge{2, 1}});
  const std::string path = ::testing::TempDir() + "tlpfuzz_repro_replay.el";
  write_repro(path, g);
  FuzzOptions opts;
  const FuzzReport rep = run_repro(path, opts);
  EXPECT_TRUE(rep.ok());
  // 4 model kinds at 2 boundary feature widths each.
  EXPECT_EQ(rep.cases_run, 8u);
}

}  // namespace
}  // namespace tlp::fuzz
