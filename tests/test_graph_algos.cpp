// Tests for degree stats, reordering (GNNAdvisor preprocessing substrate),
// and the greedy partitioner (multi-GPU future-work substrate).
#include <gtest/gtest.h>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "graph/partition.hpp"
#include "graph/reorder.hpp"
#include "graph/stats.hpp"

namespace tlp::graph {
namespace {

TEST(DegreeStats, StarValues) {
  const DegreeStats s = degree_stats(star(101));
  EXPECT_EQ(s.min, 0);
  EXPECT_EQ(s.max, 100);
  EXPECT_NEAR(s.avg, 100.0 / 101.0, 1e-9);
  EXPECT_GT(s.gini, 0.9);
  EXPECT_DOUBLE_EQ(s.median, 0.0);
}

TEST(DegreeStats, RegularIsUnskewed) {
  const DegreeStats s = degree_stats(regular_ring(64, 4));
  EXPECT_EQ(s.min, 4);
  EXPECT_EQ(s.max, 4);
  EXPECT_DOUBLE_EQ(s.cv, 0.0);
  EXPECT_NEAR(s.gini, 0.0, 1e-9);
}

TEST(Reorder, IdentityIsPermutation) {
  const Permutation p = identity_order(10);
  EXPECT_TRUE(is_permutation(p, 10));
  EXPECT_FALSE(is_permutation(p, 11));
}

TEST(Reorder, DegreeDescSortsHubsFirst) {
  const Csr g = star(50);
  const Permutation p = degree_desc_order(g);
  EXPECT_EQ(p[0], 0);  // hub first
  EXPECT_TRUE(is_permutation(p, 50));
}

TEST(Reorder, BfsVisitsEverything) {
  Rng rng(1);
  const Csr g = power_law(300, 1500, 2.3, rng);
  const Permutation p = bfs_order(g);
  EXPECT_TRUE(is_permutation(p, g.num_vertices()));
}

TEST(Reorder, ApplyPermutationPreservesStructure) {
  Rng rng(2);
  const Csr g = power_law(200, 1000, 2.3, rng);
  const Permutation p = degree_desc_order(g);
  const Csr rg = apply_permutation(g, p);
  EXPECT_EQ(rg.num_vertices(), g.num_vertices());
  EXPECT_EQ(rg.num_edges(), g.num_edges());
  // Degree multiset preserved: new vertex i has old vertex p[i]'s degree.
  for (VertexId v = 0; v < rg.num_vertices(); ++v)
    EXPECT_EQ(rg.degree(v), g.degree(p[static_cast<std::size_t>(v)]));
}

TEST(Reorder, ApplyPermutationRelabelsEdges) {
  // 0 -> 1 with permutation swapping 0 and 1 becomes 1 -> 0.
  const Csr g = build_csr(2, {{0, 1}});
  const Csr rg = apply_permutation(g, {1, 0});
  EXPECT_EQ(rg.degree(0), 1);
  EXPECT_EQ(rg.neighbors(0)[0], 1);
}

TEST(Reorder, RejectsNonPermutation) {
  const Csr g = build_csr(3, {{0, 1}});
  EXPECT_THROW(apply_permutation(g, {0, 0, 1}), tlp::CheckError);
}

TEST(Partition, CoversAllVerticesWithinK) {
  Rng rng(3);
  const Csr g = power_law(500, 5000, 2.2, rng);
  const PartitionResult r = partition_greedy(g, 4);
  ASSERT_EQ(r.part.size(), 500u);
  for (const int p : r.part) {
    EXPECT_GE(p, 0);
    EXPECT_LT(p, 4);
  }
}

TEST(Partition, EdgeCountsConsistent) {
  Rng rng(4);
  const Csr g = power_law(400, 4000, 2.3, rng);
  const PartitionResult r = partition_greedy(g, 3);
  EdgeOffset total = 0;
  for (const EdgeOffset e : r.part_edges) total += e;
  EXPECT_EQ(total, g.num_edges());
  EXPECT_LE(r.cut_edges, g.num_edges());
}

TEST(Partition, ReasonablyBalanced) {
  Rng rng(5);
  const Csr g = power_law(1000, 20000, 2.3, rng);
  const PartitionResult r = partition_greedy(g, 4);
  EXPECT_LT(edge_balance(r), 1.5);
}

TEST(Partition, SinglePartTrivial) {
  const Csr g = star(10);
  const PartitionResult r = partition_greedy(g, 1);
  EXPECT_EQ(r.cut_edges, 0);
  EXPECT_DOUBLE_EQ(edge_balance(r), 1.0);
}

}  // namespace
}  // namespace tlp::graph
