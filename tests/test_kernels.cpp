// Correctness of every device kernel against the CPU reference, swept over
// graph shapes, feature sizes (including non-multiples of the warp width),
// models, and launch policies. This is the repo's core property: all seven
// kernel strategies compute the same convolution.
#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "fuzz/kernel_runners.hpp"
#include "fuzz/oracles.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "kernels/advisor_groups.hpp"
#include "kernels/apply_edge.hpp"
#include "kernels/apply_vertex.hpp"
#include "kernels/conv_common.hpp"
#include "kernels/edge_centric.hpp"
#include "kernels/fused_gat.hpp"
#include "kernels/gather_pull.hpp"
#include "kernels/spmm.hpp"
#include "kernels/subwarp_pull.hpp"
#include "models/reference.hpp"

namespace tlp::kernels {
namespace {

using graph::Csr;
using models::ConvSpec;
using models::ModelKind;
using tensor::Tensor;

Csr make_graph(int id) {
  Rng rng(100 + static_cast<unsigned>(id));
  switch (id) {
    case 0:
      return graph::power_law(200, 1200, 2.2, rng);
    case 1:
      return graph::star(64);
    case 2:
      return graph::path(50);
    case 3:
      return graph::erdos_renyi(128, 512, rng);
    case 5:
      return graph::regular_ring(256, 8);
    default:
      return graph::build_csr(16, {});  // empty
  }
}

struct ConvHarness {
  sim::Device dev;
  Csr g;
  Tensor h;
  DeviceGraph dg;
  sim::DevPtr<float> dfeat;
  sim::DevPtr<float> dout;

  ConvHarness(int graph_id, std::int64_t f, std::uint64_t seed = 7)
      : g(make_graph(graph_id)) {
    Rng rng(seed);
    h = Tensor::random(g.num_vertices(), f, rng);
    dg = upload_graph(dev, g);
    dfeat = upload_features(dev, h);
    dout = dev.alloc_zeroed<float>(dg.n * f);
  }

  [[nodiscard]] Tensor out() {
    return download_features(dev, dout, dg.n, h.cols());
  }
  void zero_out() {
    auto v = dev.mem().view(dout);
    std::fill(v.begin(), v.end(), 0.0f);
  }
};

// ---------------------------------------------------------------------------
// GatherPull (TLPGNN core) over all models/graphs/feature sizes/assignments.
// ---------------------------------------------------------------------------

using PullParam = std::tuple<int /*graph*/, int /*f*/, ModelKind,
                             sim::Assignment, bool /*register cache*/>;

class GatherPullTest : public ::testing::TestWithParam<PullParam> {};

TEST_P(GatherPullTest, MatchesReference) {
  const auto [graph_id, f, kind, assignment, cache] = GetParam();
  ConvHarness hx(graph_id, f);
  Rng rng(1);
  const ConvSpec spec = ConvSpec::make(kind, f, rng);
  GatherPullKernel k(hx.dg, hx.dfeat, hx.dout, f, {kind, spec.gin_eps}, cache);
  sim::LaunchConfig cfg;
  cfg.assignment = assignment;
  hx.dev.launch(k, cfg);
  const Tensor ref = models::reference_conv(hx.g, hx.h, spec);
  EXPECT_TRUE(tensor::allclose(hx.out(), ref, 1e-4, 1e-4))
      << "max diff " << tensor::max_abs_diff(hx.out(), ref);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, GatherPullTest,
    ::testing::Combine(::testing::Values(0, 1, 4),
                       ::testing::Values(1, 32, 33, 100),
                       ::testing::Values(ModelKind::kGcn, ModelKind::kGin,
                                         ModelKind::kSage),
                       ::testing::Values(sim::Assignment::kHardwareDynamic,
                                         sim::Assignment::kSoftwarePool),
                       ::testing::Values(true, false)));

INSTANTIATE_TEST_SUITE_P(
    StaticAssignment, GatherPullTest,
    ::testing::Combine(::testing::Values(0, 2, 3), ::testing::Values(32, 7),
                       ::testing::Values(ModelKind::kGcn, ModelKind::kSage),
                       ::testing::Values(sim::Assignment::kStaticChunk),
                       ::testing::Values(true)));

// ---------------------------------------------------------------------------
// SubwarpPull at every lanes-per-vertex width (Table 2's implementations).
// ---------------------------------------------------------------------------

using SubwarpParam = std::tuple<int /*graph*/, int /*f*/, ModelKind, int /*lpv*/>;

class SubwarpTest : public ::testing::TestWithParam<SubwarpParam> {};

TEST_P(SubwarpTest, MatchesReference) {
  const auto [graph_id, f, kind, lpv] = GetParam();
  ConvHarness hx(graph_id, f);
  Rng rng(2);
  const ConvSpec spec = ConvSpec::make(kind, f, rng);
  SubwarpPullKernel k(hx.dg, hx.dfeat, hx.dout, f, {kind, spec.gin_eps}, lpv);
  hx.dev.launch(k, {});
  const Tensor ref = models::reference_conv(hx.g, hx.h, spec);
  EXPECT_TRUE(tensor::allclose(hx.out(), ref, 1e-4, 1e-4))
      << "lpv=" << lpv << " max diff "
      << tensor::max_abs_diff(hx.out(), ref);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SubwarpTest,
    ::testing::Combine(::testing::Values(0, 1),
                       ::testing::Values(8, 32, 48),
                       ::testing::Values(ModelKind::kGcn, ModelKind::kGin,
                                         ModelKind::kSage),
                       ::testing::Values(1, 2, 8, 16, 32)));

TEST(SubwarpPull, OneThreadHasMoreSectorsPerRequestThanHalfWarp) {
  // The Table 2 mechanism: lanes-per-vertex 1 gathers from 32 different
  // rows per request; 16 lanes per vertex gathers mostly-contiguous spans.
  // A regular graph keeps every lane active so the comparison isolates
  // coalescing from divergence.
  auto sectors_per_request = [](int lpv) {
    ConvHarness hx(5, 64);
    SubwarpPullKernel k(hx.dg, hx.dfeat, hx.dout, 64,
                        {ModelKind::kGin, 0.1f}, lpv);
    hx.dev.launch(k, {});
    const sim::Metrics m = hx.dev.metrics();
    return m.sectors_per_request;
  };
  EXPECT_GT(sectors_per_request(1), 2.0 * sectors_per_request(16));
}

// ---------------------------------------------------------------------------
// Edge-weighted convolution (Eq. 1's per-edge feature extension).
// ---------------------------------------------------------------------------

class EdgeWeightedTest
    : public ::testing::TestWithParam<std::tuple<ModelKind, bool>> {};

TEST_P(EdgeWeightedTest, GatherPullMatchesWeightedReference) {
  const auto [kind, cache] = GetParam();
  ConvHarness hx(0, 24);
  Rng rng(17);
  ConvSpec spec;
  spec.kind = kind;
  spec.edge_weights.resize(static_cast<std::size_t>(hx.dg.m));
  for (auto& w : spec.edge_weights) w = rng.next_float() * 2.0f;
  const auto dew = hx.dev.upload<float>(spec.edge_weights);
  GatherPullKernel k(hx.dg, hx.dfeat, hx.dout, 24, {kind, spec.gin_eps},
                     cache, dew);
  hx.dev.launch(k, {});
  const Tensor ref = models::reference_conv(hx.g, hx.h, spec);
  EXPECT_TRUE(tensor::allclose(hx.out(), ref, 1e-4, 1e-4))
      << "max diff " << tensor::max_abs_diff(hx.out(), ref);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, EdgeWeightedTest,
    ::testing::Combine(::testing::Values(ModelKind::kGcn, ModelKind::kGin,
                                         ModelKind::kSage),
                       ::testing::Values(true, false)));

TEST(EdgeWeighted, UnitWeightsMatchUnweighted) {
  ConvHarness hx(0, 16);
  ConvSpec weighted;
  weighted.kind = ModelKind::kGin;
  weighted.edge_weights.assign(static_cast<std::size_t>(hx.dg.m), 1.0f);
  ConvSpec plain;
  plain.kind = ModelKind::kGin;
  EXPECT_TRUE(tensor::allclose(models::reference_conv(hx.g, hx.h, weighted),
                               models::reference_conv(hx.g, hx.h, plain)));
}

TEST(EdgeWeighted, ReferenceRejectsBadSpecs) {
  ConvHarness hx(2, 8);
  ConvSpec spec;
  spec.kind = ModelKind::kGcn;
  spec.edge_weights = {1.0f};  // wrong size
  EXPECT_THROW(models::reference_conv(hx.g, hx.h, spec), tlp::CheckError);
  Rng rng(18);
  ConvSpec gat = ConvSpec::make(ModelKind::kGat, 8, rng);
  gat.edge_weights.assign(static_cast<std::size_t>(hx.g.num_edges()), 1.0f);
  EXPECT_THROW(models::reference_conv(hx.g, hx.h, gat), tlp::CheckError);
}

// ---------------------------------------------------------------------------
// SpMM variants.
// ---------------------------------------------------------------------------

TEST(Spmm, SumMatchesGinWithoutSelf) {
  ConvHarness hx(0, 32);
  SpmmKernel k(hx.dg, hx.dfeat, hx.dout, 32, SpmmKernel::Weighting::kSum);
  hx.dev.launch(k, {});
  // Reference: GIN minus its self term == plain neighbor sum.
  ConvSpec spec;
  spec.kind = ModelKind::kGin;
  spec.gin_eps = -1.0f;  // (1 + eps) == 0 removes the self term
  const Tensor ref = models::reference_conv(hx.g, hx.h, spec);
  EXPECT_TRUE(tensor::allclose(hx.out(), ref, 1e-4, 1e-4));
}

TEST(Spmm, MeanMatchesSage) {
  for (const bool cache : {true, false}) {
    ConvHarness hx(0, 20);
    SpmmKernel k(hx.dg, hx.dfeat, hx.dout, 20, SpmmKernel::Weighting::kMean,
                 {}, cache);
    hx.dev.launch(k, {});
    ConvSpec spec;
    spec.kind = ModelKind::kSage;
    const Tensor ref = models::reference_conv(hx.g, hx.h, spec);
    EXPECT_TRUE(tensor::allclose(hx.out(), ref, 1e-4, 1e-4));
  }
}

TEST(Spmm, GcnNormPairPlusSelfMatchesGcn) {
  ConvHarness hx(3, 32);
  SpmmKernel k(hx.dg, hx.dfeat, hx.dout, 32,
               SpmmKernel::Weighting::kGcnNormPair);
  hx.dev.launch(k, {});
  AddScaledSelfKernel self(hx.dfeat, hx.dout, 32,
                           AddScaledSelfKernel::Mode::kNormSquared, hx.dg);
  hx.dev.launch(self, {});
  ConvSpec spec;
  spec.kind = ModelKind::kGcn;
  const Tensor ref = models::reference_conv(hx.g, hx.h, spec);
  EXPECT_TRUE(tensor::allclose(hx.out(), ref, 1e-4, 1e-4));
}

TEST(Spmm, EdgeArrayWeights) {
  // All edge weights = 2: result is twice the plain sum.
  ConvHarness hx(0, 16);
  std::vector<float> w(static_cast<std::size_t>(hx.dg.m), 2.0f);
  const auto dw = hx.dev.upload<float>(w);
  SpmmKernel k(hx.dg, hx.dfeat, hx.dout, 16, SpmmKernel::Weighting::kEdgeArray,
               dw);
  hx.dev.launch(k, {});
  ConvSpec spec;
  spec.kind = ModelKind::kGin;
  spec.gin_eps = -1.0f;
  const Tensor ref = models::reference_conv(hx.g, hx.h, spec);
  Tensor doubled = ref;
  for (auto& v : doubled.flat()) v *= 2.0f;
  EXPECT_TRUE(tensor::allclose(hx.out(), doubled, 1e-4, 1e-4));
}

// ---------------------------------------------------------------------------
// Fused GAT and the 3-kernel GAT path.
// ---------------------------------------------------------------------------

class GatTest : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(GatTest, FusedMatchesReference) {
  const auto [graph_id, f] = GetParam();
  ConvHarness hx(graph_id, f);
  Rng rng(3);
  const ConvSpec spec = ConvSpec::make(ModelKind::kGat, f, rng);
  const models::GatHalves halves = models::gat_halves(hx.h, spec.gat);
  const auto dsh = hx.dev.upload<float>(halves.src);
  const auto ddh = hx.dev.upload<float>(halves.dst);
  FusedGatKernel k(hx.dg, hx.dfeat, dsh, ddh, hx.dout, f,
                   spec.gat.leaky_slope);
  hx.dev.launch(k, {});
  const Tensor ref = models::reference_conv(hx.g, hx.h, spec);
  EXPECT_TRUE(tensor::allclose(hx.out(), ref, 1e-3, 1e-4))
      << "max diff " << tensor::max_abs_diff(hx.out(), ref);
}

TEST_P(GatTest, ThreeKernelMatchesFused) {
  const auto [graph_id, f] = GetParam();
  Rng rng(3);
  const ConvSpec spec = ConvSpec::make(ModelKind::kGat, f, rng);

  ConvHarness fused(graph_id, f);
  {
    const models::GatHalves halves = models::gat_halves(fused.h, spec.gat);
    const auto dsh = fused.dev.upload<float>(halves.src);
    const auto ddh = fused.dev.upload<float>(halves.dst);
    FusedGatKernel k(fused.dg, fused.dfeat, dsh, ddh, fused.dout, f,
                     spec.gat.leaky_slope);
    fused.dev.launch(k, {});
  }

  ConvHarness three(graph_id, f);
  {
    const auto asrc = three.dev.upload<float>(spec.gat.attn_src);
    const auto adst = three.dev.upload<float>(spec.gat.attn_dst);
    auto sh = three.dev.alloc_zeroed<float>(three.dg.n);
    auto dh = three.dev.alloc_zeroed<float>(three.dg.n);
    auto alpha = three.dev.alloc_zeroed<float>(three.dg.m);
    GatHalvesKernel halves(three.dfeat, asrc, adst, sh, dh, three.dg.n, f);
    three.dev.launch(halves, {});
    GatSoftmaxKernel softmax(three.dg, sh, dh, alpha, spec.gat.leaky_slope);
    three.dev.launch(softmax, {});
    SpmmKernel agg(three.dg, three.dfeat, three.dout, f,
                   SpmmKernel::Weighting::kEdgeArray, alpha);
    three.dev.launch(agg, {});
  }
  EXPECT_TRUE(tensor::allclose(three.out(), fused.out(), 1e-3, 1e-4));
}

INSTANTIATE_TEST_SUITE_P(Sweep, GatTest,
                         ::testing::Combine(::testing::Values(0, 1, 2, 4),
                                            ::testing::Values(8, 32, 40)));

// ---------------------------------------------------------------------------
// Edge-centric aggregation + epilogues.
// ---------------------------------------------------------------------------

TEST(EdgeCentric, GcnWithSelfMatchesReference) {
  ConvHarness hx(0, 32);
  const DeviceCoo coo = upload_coo(hx.dev, hx.g);
  EdgeCentricAggKernel agg(coo, hx.dg.norm, hx.dfeat, hx.dout, 32,
                           {ModelKind::kGcn, 0.0f});
  hx.dev.launch(agg, {});
  AddScaledSelfKernel self(hx.dfeat, hx.dout, 32,
                           AddScaledSelfKernel::Mode::kNormSquared, hx.dg);
  hx.dev.launch(self, {});
  ConvSpec spec;
  spec.kind = ModelKind::kGcn;
  const Tensor ref = models::reference_conv(hx.g, hx.h, spec);
  EXPECT_TRUE(tensor::allclose(hx.out(), ref, 1e-4, 1e-4));
}

TEST(EdgeCentric, ProducesAtomicTraffic) {
  ConvHarness hx(0, 32);
  const DeviceCoo coo = upload_coo(hx.dev, hx.g);
  EdgeCentricAggKernel agg(coo, hx.dg.norm, hx.dfeat, hx.dout, 32,
                           {ModelKind::kGin, 0.1f});
  hx.dev.launch(agg, {});
  EXPECT_GT(hx.dev.metrics().bytes_atomic, 0.0);
}

// ---------------------------------------------------------------------------
// GNNAdvisor neighbor groups.
// ---------------------------------------------------------------------------

TEST(AdvisorGroups, BuildCoversEveryEdgeOnce) {
  const Csr g = make_graph(0);
  const NeighborGroups groups = build_neighbor_groups(g, 8);
  std::int64_t covered = 0;
  for (std::size_t i = 0; i < groups.vertex.size(); ++i) {
    EXPECT_LE(groups.len[i], 8);
    EXPECT_GT(groups.len[i], 0);
    covered += groups.len[i];
  }
  EXPECT_EQ(covered, g.num_edges());
}

TEST(AdvisorGroups, KernelMatchesReference) {
  for (const int gsize : {4, 16, 64}) {
    ConvHarness hx(0, 32);
    const NeighborGroups groups = build_neighbor_groups(hx.g, gsize);
    const DeviceGroups dgroups = upload_groups(hx.dev, groups);
    AdvisorGroupKernel agg(hx.dg, dgroups, hx.dfeat, hx.dout, 32,
                           {ModelKind::kGcn, 0.0f});
    hx.dev.launch(agg, {});
    AddScaledSelfKernel self(hx.dfeat, hx.dout, 32,
                             AddScaledSelfKernel::Mode::kNormSquared, hx.dg);
    hx.dev.launch(self, {});
    ConvSpec spec;
    spec.kind = ModelKind::kGcn;
    const Tensor ref = models::reference_conv(hx.g, hx.h, spec);
    EXPECT_TRUE(tensor::allclose(hx.out(), ref, 1e-4, 1e-4)) << "gsize " << gsize;
  }
}

// ---------------------------------------------------------------------------
// ApplyVertex / ApplyEdge building blocks.
// ---------------------------------------------------------------------------

TEST(ApplyVertex, FillAndCopy) {
  ConvHarness hx(2, 16);
  FillRowsKernel fill(hx.dout, hx.dg.n, 16, 3.5f);
  hx.dev.launch(fill, {});
  const Tensor filled = hx.out();  // named: .flat() must not dangle
  for (const float v : filled.flat()) EXPECT_FLOAT_EQ(v, 3.5f);
  CopyRowsKernel copy(hx.dfeat, hx.dout, hx.dg.n, 16);
  hx.dev.launch(copy, {});
  EXPECT_TRUE(tensor::allclose(hx.out(), hx.h));
}

TEST(ApplyVertex, VertexDot) {
  ConvHarness hx(2, 24);
  std::vector<float> w(24);
  for (std::size_t i = 0; i < w.size(); ++i) w[i] = 0.1f * static_cast<float>(i);
  const auto dw = hx.dev.upload<float>(w);
  auto dots = hx.dev.alloc_zeroed<float>(hx.dg.n);
  VertexDotKernel k(hx.dfeat, dw, dots, hx.dg.n, 24);
  hx.dev.launch(k, {});
  const auto host = hx.dev.download(dots);
  for (graph::VertexId v = 0; v < hx.g.num_vertices(); ++v) {
    float expect = 0;
    for (std::int64_t j = 0; j < 24; ++j)
      expect += hx.h.at(v, j) * w[static_cast<std::size_t>(j)];
    EXPECT_NEAR(host[static_cast<std::size_t>(v)], expect, 1e-4);
  }
}

TEST(ApplyVertex, SegmentReduceMaxAndSum) {
  ConvHarness hx(0, 4);
  std::vector<float> ev(static_cast<std::size_t>(hx.dg.m));
  Rng rng(9);
  for (auto& v : ev) v = rng.next_float();
  const auto dev_ev = hx.dev.upload<float>(ev);
  auto out_max = hx.dev.alloc_zeroed<float>(hx.dg.n);
  auto out_sum = hx.dev.alloc_zeroed<float>(hx.dg.n);
  SegmentReduceKernel km(hx.dg, dev_ev, out_max, SegmentReduceKernel::Op::kMax);
  hx.dev.launch(km, {});
  SegmentReduceKernel ks(hx.dg, dev_ev, out_sum, SegmentReduceKernel::Op::kSum);
  hx.dev.launch(ks, {});
  const auto hmax = hx.dev.download(out_max);
  const auto hsum = hx.dev.download(out_sum);
  for (graph::VertexId v = 0; v < hx.g.num_vertices(); ++v) {
    const auto base = hx.g.indptr()[static_cast<std::size_t>(v)];
    const auto deg = hx.g.degree(v);
    if (deg == 0) continue;
    float mx = ev[static_cast<std::size_t>(base)];
    float sum = 0;
    for (graph::EdgeOffset e = 0; e < deg; ++e) {
      mx = std::max(mx, ev[static_cast<std::size_t>(base + e)]);
      sum += ev[static_cast<std::size_t>(base + e)];
    }
    EXPECT_NEAR(hmax[static_cast<std::size_t>(v)], mx, 1e-5);
    EXPECT_NEAR(hsum[static_cast<std::size_t>(v)], sum, 1e-3);
  }
}

TEST(ApplyEdge, LogitsMatchReference) {
  ConvHarness hx(0, 16);
  Rng rng(4);
  const ConvSpec spec = ConvSpec::make(ModelKind::kGat, 16, rng);
  const auto logits_ref =
      models::reference_gat_logits(hx.g, hx.h, spec.gat);

  const DeviceCoo coo = upload_coo(hx.dev, hx.g);
  const auto asrc = hx.dev.upload<float>(spec.gat.attn_src);
  const auto adst = hx.dev.upload<float>(spec.gat.attn_dst);
  auto sh = hx.dev.alloc_zeroed<float>(hx.dg.n);
  auto dh = hx.dev.alloc_zeroed<float>(hx.dg.n);
  GatHalvesKernel halves(hx.dfeat, asrc, adst, sh, dh, hx.dg.n, 16);
  hx.dev.launch(halves, {});
  auto logit = hx.dev.alloc_zeroed<float>(hx.dg.m);
  EdgeLogitKernel k(coo, sh, dh, logit, spec.gat.leaky_slope);
  hx.dev.launch(k, {});
  const auto host = hx.dev.download(logit);
  for (std::size_t e = 0; e < logits_ref.size(); ++e)
    EXPECT_NEAR(host[e], logits_ref[e], 1e-4);
}

TEST(ApplyEdge, UMulEMaterialize) {
  ConvHarness hx(2, 8);
  const DeviceCoo coo = upload_coo(hx.dev, hx.g);
  std::vector<float> w(static_cast<std::size_t>(hx.dg.m), 3.0f);
  const auto dw = hx.dev.upload<float>(w);
  auto msg = hx.dev.alloc_zeroed<float>(hx.dg.m * 8);
  UMulEMaterializeKernel k(coo, dw, hx.dfeat, msg, 8);
  hx.dev.launch(k, {});
  const auto host = hx.dev.download(msg);
  // Edge e of the path graph is (e) -> (e+1): msg[e] = 3 * h[e].
  for (std::int64_t e = 0; e < hx.dg.m; ++e) {
    for (std::int64_t j = 0; j < 8; ++j)
      EXPECT_NEAR(host[static_cast<std::size_t>(e * 8 + j)],
                  3.0f * hx.h.at(e, j), 1e-4);
  }
}

// ---------------------------------------------------------------------------
// Pathological-graph edge cases, across every kernel strategy at once via the
// fuzzing harness's runner registry: no-edge graphs, a single vertex (with
// and without a self loop), all-isolated vertices at a non-warp-multiple
// count, and duplicate parallel edges.
// ---------------------------------------------------------------------------

struct EdgeCase {
  const char* name;
  Csr g;
};

std::vector<EdgeCase> edge_case_graphs() {
  using graph::Edge;
  std::vector<EdgeCase> cases;
  cases.push_back({"empty", graph::build_csr(16, {})});
  cases.push_back({"single_vertex", graph::build_csr(1, {})});
  cases.push_back(
      {"single_vertex_self_loop", graph::build_csr(1, {Edge{0, 0}})});
  cases.push_back({"all_isolated", graph::build_csr(33, {})});
  std::vector<Edge> dup;
  for (const Edge e :
       {Edge{0, 1}, Edge{2, 3}, Edge{4, 5}, Edge{1, 0}, Edge{5, 4}}) {
    dup.push_back(e);
    dup.push_back(e);  // every edge twice: parallel edges survive the build
  }
  cases.push_back({"duplicate_edges",
                   graph::build_csr(8, std::move(dup), {.dedup = false})});
  return cases;
}

class KernelEdgeCaseTest : public ::testing::TestWithParam<ModelKind> {};

TEST_P(KernelEdgeCaseTest, AllStrategiesMatchReferenceOnPathologies) {
  const ModelKind kind = GetParam();
  for (const EdgeCase& ec : edge_case_graphs()) {
    for (const std::int64_t f : {1, 33}) {
      Rng rng(11);
      const ConvSpec spec = ConvSpec::make(kind, f, rng);
      Rng frng(23);
      const Tensor h = Tensor::random(ec.g.num_vertices(), f, frng);
      const Tensor ref = models::reference_conv(ec.g, h, spec);
      for (const fuzz::KernelRunner& r : fuzz::kernel_runners()) {
        if (!r.supports(spec)) continue;
        sim::Device dev;
        const Tensor got = r.run(dev, ec.g, h, spec, {});
        std::string detail;
        EXPECT_TRUE(fuzz::outputs_close(got, ref, &detail))
            << r.name << " on " << ec.name << " f=" << f << ": " << detail;
      }
    }
  }
}

TEST_P(KernelEdgeCaseTest, DuplicateEdgesCountTwice) {
  // A graph with every edge doubled must aggregate each neighbor twice —
  // the reference built from the doubled list is NOT the deduplicated one.
  const ModelKind kind = GetParam();
  using graph::Edge;
  const std::vector<Edge> once = {Edge{0, 1}, Edge{2, 1}, Edge{1, 2}};
  std::vector<Edge> twice;
  for (const Edge e : once) {
    twice.push_back(e);
    twice.push_back(e);
  }
  const Csr g1 = graph::build_csr(3, once, {.dedup = false});
  const Csr g2 = graph::build_csr(3, twice, {.dedup = false});
  Rng rng(31);
  const ConvSpec spec = ConvSpec::make(kind, 8, rng);
  Rng frng(37);
  const Tensor h = Tensor::random(3, 8, frng);
  const Tensor ref1 = models::reference_conv(g1, h, spec);
  const Tensor ref2 = models::reference_conv(g2, h, spec);
  // Sage (mean) and GAT (softmax) are invariant to edge multiplicity; the
  // sum-based models must differ.
  if (kind == ModelKind::kGcn || kind == ModelKind::kGin) {
    EXPECT_GT(tensor::max_abs_diff(ref1, ref2), 1e-3);
  } else {
    EXPECT_TRUE(tensor::allclose(ref1, ref2, 1e-4, 1e-5));
  }
}

INSTANTIATE_TEST_SUITE_P(AllModels, KernelEdgeCaseTest,
                         ::testing::Values(ModelKind::kGcn, ModelKind::kGin,
                                           ModelKind::kSage, ModelKind::kGat));

}  // namespace
}  // namespace tlp::kernels
