// Integration tests across src/systems: every framework replica computes the
// same convolution as the CPU reference, honours its support matrix, and
// exhibits the qualitative properties the paper attributes to it (kernel
// counts, atomic traffic, occupancy, memory usage).
#include <gtest/gtest.h>

#include <cstring>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "graph/generators.hpp"
#include "models/reference.hpp"
#include "systems/baseline_systems.hpp"
#include "systems/partitioned.hpp"
#include "systems/dgl_system.hpp"
#include "systems/featgraph_system.hpp"
#include "systems/gnnadvisor_system.hpp"
#include "systems/system.hpp"
#include "systems/tlpgnn_system.hpp"

namespace tlp::systems {
namespace {

using graph::Csr;
using models::ConvSpec;
using models::ModelKind;
using tensor::Tensor;

struct World {
  Csr g;
  Tensor h;
  World(std::int64_t f = 32, std::uint64_t seed = 11) {
    Rng rng(seed);
    g = graph::power_law(300, 2400, 2.2, rng);
    h = Tensor::random(g.num_vertices(), f, rng);
  }
};

using SysModel = std::tuple<std::string, ModelKind>;

class SystemCorrectness : public ::testing::TestWithParam<SysModel> {};

TEST_P(SystemCorrectness, MatchesReference) {
  const auto& [name, kind] = GetParam();
  const World w;
  Rng rng(5);
  const ConvSpec spec = ConvSpec::make(kind, w.h.cols(), rng);
  auto sys = make_system(name);
  if (!sys->supports(kind, /*big_graph=*/false)) GTEST_SKIP();
  sim::Device dev;
  const RunResult r = sys->run(dev, w.g, w.h, spec);
  const Tensor ref = models::reference_conv(w.g, w.h, spec);
  EXPECT_TRUE(tensor::allclose(r.output, ref, 1e-3, 1e-4))
      << name << "/" << models::model_name(kind) << " max diff "
      << tensor::max_abs_diff(r.output, ref);
  EXPECT_GT(r.gpu_time_ms, 0.0);
  EXPECT_GE(r.runtime_ms, r.measured_ms);
  EXPECT_GE(r.measured_ms, r.gpu_time_ms);
}

INSTANTIATE_TEST_SUITE_P(
    AllSystemsAllModels, SystemCorrectness,
    ::testing::Combine(
        ::testing::Values("tlpgnn", "dgl", "gnnadvisor", "featgraph", "push",
                          "edge", "pull"),
        ::testing::Values(ModelKind::kGcn, ModelKind::kGin, ModelKind::kSage,
                          ModelKind::kGat)),
    [](const auto& suite_info) {
      return std::get<0>(suite_info.param) + std::string("_") +
             models::model_name(std::get<1>(suite_info.param));
    });

TEST(SystemMatrix, SupportFlags) {
  EXPECT_FALSE(make_system("gnnadvisor")->supports(ModelKind::kSage, false));
  EXPECT_FALSE(make_system("gnnadvisor")->supports(ModelKind::kGat, false));
  EXPECT_FALSE(make_system("gnnadvisor")->supports(ModelKind::kGcn, true));
  EXPECT_TRUE(make_system("gnnadvisor")->supports(ModelKind::kGcn, false));
  EXPECT_FALSE(make_system("push")->supports(ModelKind::kGat, false));
  EXPECT_TRUE(make_system("dgl")->supports(ModelKind::kGat, true));
  EXPECT_THROW(make_system("bogus"), tlp::CheckError);
}

TEST(Dgl, KernelCountsMatchPaper) {
  EXPECT_EQ(DglSystem::kernel_count(ModelKind::kGcn), 6);
  EXPECT_EQ(DglSystem::kernel_count(ModelKind::kGin), 8);
  EXPECT_EQ(DglSystem::kernel_count(ModelKind::kSage), 10);
  EXPECT_EQ(DglSystem::kernel_count(ModelKind::kGat), 18);

  const World w;
  Rng rng(6);
  sim::Device dev;
  for (const ModelKind kind : models::kAllModels) {
    const ConvSpec spec = ConvSpec::make(kind, w.h.cols(), rng);
    DglSystem dgl;
    const RunResult r = dgl.run(dev, w.g, w.h, spec);
    EXPECT_EQ(r.kernel_launches, DglSystem::kernel_count(kind));
  }
}

TEST(Tlpgnn, SingleKernelForEveryModel) {
  const World w;
  Rng rng(7);
  sim::Device dev;
  TlpgnnSystem sys;
  for (const ModelKind kind : models::kAllModels) {
    const ConvSpec spec = ConvSpec::make(kind, w.h.cols(), rng);
    const RunResult r = sys.run(dev, w.g, w.h, spec);
    EXPECT_EQ(r.kernel_launches, 1) << models::model_name(kind);
  }
}

TEST(Tlpgnn, AtomicFree) {
  const World w;
  Rng rng(8);
  sim::Device dev;
  TlpgnnSystem sys;
  const ConvSpec spec = ConvSpec::make(ModelKind::kGcn, w.h.cols(), rng);
  const RunResult r = sys.run(dev, w.g, w.h, spec);
  EXPECT_DOUBLE_EQ(r.metrics.bytes_atomic, 0.0);
}

TEST(Baselines, AtomicStrategiesProduceAtomicTraffic) {
  const World w;
  Rng rng(9);
  const ConvSpec spec = ConvSpec::make(ModelKind::kGcn, w.h.cols(), rng);
  for (const char* name : {"push", "edge", "gnnadvisor"}) {
    sim::Device dev;
    const RunResult r = make_system(name)->run(dev, w.g, w.h, spec);
    EXPECT_GT(r.metrics.bytes_atomic, 0.0) << name;
  }
  sim::Device dev;
  const RunResult pull = make_system("pull")->run(dev, w.g, w.h, spec);
  EXPECT_DOUBLE_EQ(pull.metrics.bytes_atomic, 0.0);
}

TEST(Tlpgnn, HybridHeuristicThresholds) {
  // §5: software when |V| > 1M or avg degree > 50.
  EXPECT_EQ(hybrid_heuristic(2'000'000, 3.0), sim::Assignment::kSoftwarePool);
  EXPECT_EQ(hybrid_heuristic(1000, 400.0), sim::Assignment::kSoftwarePool);
  EXPECT_EQ(hybrid_heuristic(1000, 3.0), sim::Assignment::kHardwareDynamic);
  EXPECT_EQ(hybrid_heuristic(999'999, 50.0), sim::Assignment::kHardwareDynamic);
}

TEST(Tlpgnn, AblationStagesAllCorrect) {
  const World w;
  Rng rng(10);
  const Tensor ref = models::reference_conv(
      w.g, w.h, ConvSpec::make(ModelKind::kGcn, w.h.cols(), rng));
  for (const bool hybrid : {false, true}) {
    for (const bool cache : {false, true}) {
      TlpgnnOptions opts;
      opts.hybrid_assignment = hybrid;
      opts.register_cache = cache;
      TlpgnnSystem sys(opts);
      sim::Device dev;
      ConvSpec spec;
      spec.kind = ModelKind::kGcn;
      const RunResult r = sys.run(dev, w.g, w.h, spec);
      EXPECT_TRUE(tensor::allclose(r.output, ref, 1e-3, 1e-4));
    }
  }
}

TEST(Tlpgnn, UnfusedGatMatchesFused) {
  const World w;
  Rng rng(11);
  const ConvSpec spec = ConvSpec::make(ModelKind::kGat, w.h.cols(), rng);
  TlpgnnOptions unfused_opts;
  unfused_opts.fused_gat = false;
  TlpgnnSystem fused, unfused(unfused_opts);
  sim::Device dev;
  const RunResult rf = fused.run(dev, w.g, w.h, spec);
  const RunResult ru = unfused.run(dev, w.g, w.h, spec);
  EXPECT_TRUE(tensor::allclose(ru.output, rf.output, 1e-3, 1e-4));
  EXPECT_EQ(rf.kernel_launches, 1);
  EXPECT_EQ(ru.kernel_launches, 3);
  // Fusion saves launches and global traffic.
  EXPECT_LT(rf.peak_device_bytes, ru.peak_device_bytes);
}

TEST(Tlpgnn, FixedGridStillCorrect) {
  const World w;
  Rng rng(12);
  const ConvSpec spec = ConvSpec::make(ModelKind::kGin, w.h.cols(), rng);
  const Tensor ref = models::reference_conv(w.g, w.h, spec);
  for (const int blocks : {1, 4, 64}) {
    TlpgnnOptions opts;
    opts.grid_blocks = blocks;
    TlpgnnSystem sys(opts);
    sim::Device dev;
    const RunResult r = sys.run(dev, w.g, w.h, spec);
    EXPECT_TRUE(tensor::allclose(r.output, ref, 1e-3, 1e-4)) << blocks;
  }
}

TEST(Featgraph, LowerOccupancyThanTlpgnn) {
  // The Figure 9 mechanism: FeatGraph's 1-warp blocks cap resident warps.
  const World w;
  Rng rng(13);
  ConvSpec spec;
  spec.kind = ModelKind::kGcn;
  sim::Device dev;
  FeatgraphSystem fg;
  const double occ_fg = fg.run(dev, w.g, w.h, spec).metrics.achieved_occupancy;
  TlpgnnSystem tl;
  const double occ_tl = tl.run(dev, w.g, w.h, spec).metrics.achieved_occupancy;
  EXPECT_LT(occ_fg, occ_tl);
}

TEST(Dgl, UsesMoreMemoryAndTrafficThanTlpgnn) {
  const World w;
  Rng rng(14);
  const ConvSpec spec = ConvSpec::make(ModelKind::kGat, w.h.cols(), rng);
  sim::Device dev;
  DglSystem dgl;
  const RunResult rd = dgl.run(dev, w.g, w.h, spec);
  TlpgnnSystem tl;
  const RunResult rt = tl.run(dev, w.g, w.h, spec);
  EXPECT_GT(rd.peak_device_bytes, 2 * rt.peak_device_bytes);
  const double dgl_traffic =
      rd.metrics.bytes_load + rd.metrics.bytes_store + rd.metrics.bytes_atomic;
  const double tlp_traffic =
      rt.metrics.bytes_load + rt.metrics.bytes_store + rt.metrics.bytes_atomic;
  EXPECT_GT(dgl_traffic, tlp_traffic);
}

TEST(Advisor, ReportsPreprocessingTime) {
  const World w;
  ConvSpec spec;
  spec.kind = ModelKind::kGcn;
  sim::Device dev;
  GnnAdvisorSystem sys;
  const RunResult r = sys.run(dev, w.g, w.h, spec);
  EXPECT_GT(r.preprocessing_ms, 0.0);
}

TEST(Partitioned, CountInvarianceBitIdentical) {
  // Regression for the fuzzer's partition-count invariant: the partitioned
  // runner must reproduce the unpartitioned output bit for bit at every
  // partition count, including counts that do not divide |V|. k=1 is the
  // plain system run itself (run_partitioned requires k >= 2).
  const World w;
  Rng rng(21);
  for (const ModelKind kind : models::kAllModels) {
    const ConvSpec spec = ConvSpec::make(kind, w.h.cols(), rng);
    TlpgnnSystem sys;
    sim::Device base_dev;
    const RunResult base = sys.run(base_dev, w.g, w.h, spec);
    for (const int k : {2, 3, 7}) {
      sim::Device dev;
      const RunResult part = run_partitioned(sys, dev, w.g, w.h, spec, k);
      ASSERT_EQ(part.output.rows(), base.output.rows());
      ASSERT_EQ(part.output.cols(), base.output.cols());
      const auto a = base.output.flat();
      const auto b = part.output.flat();
      EXPECT_EQ(std::memcmp(a.data(), b.data(), a.size() * sizeof(float)), 0)
          << models::model_name(kind) << " k=" << k;
    }
  }
}

TEST(Systems, Table5NamesResolve) {
  for (const auto& name : table5_system_names()) {
    EXPECT_NO_THROW((void)make_system(name));
  }
}

}  // namespace
}  // namespace tlp::systems
