// Unit tests for the tlpbench reporting pipeline: JSON round-trips, the
// versioned Report schema, shape-assertion evaluation (pass and fail paths),
// and the EXPERIMENTS.md renderer (DESIGN.md §9).
#include <gtest/gtest.h>

#include "report/json.hpp"
#include "report/render_md.hpp"
#include "report/report.hpp"
#include "report/shapes.hpp"

namespace tlp::report {
namespace {

// --- Json ------------------------------------------------------------------

TEST(Json, DumpParseRoundTripIsIdentity) {
  Json doc = Json::object();
  doc.set("schema", kSchema);
  doc.set("pi", 3.141592653589793);
  doc.set("negative", -0.001);
  doc.set("big", 1e15);
  doc.set("flag", true);
  doc.set("nothing", Json());
  Json arr = Json::array();
  arr.push_back(1);
  arr.push_back("two");
  arr.push_back(Json::object().set("k", "v"));
  doc.set("mixed", std::move(arr));

  const std::string text = doc.dump();
  const Json parsed = Json::parse(text);
  EXPECT_EQ(parsed, doc);
  // Serialize -> parse -> serialize must be byte-identical (baseline diffs
  // and the --check-md gate depend on this).
  EXPECT_EQ(parsed.dump(), text);
}

TEST(Json, ObjectsPreserveInsertionOrderAndSetReplacesInPlace) {
  Json obj = Json::object();
  obj.set("z", 1);
  obj.set("a", 2);
  obj.set("z", 3);  // replaces, keeps first position
  ASSERT_EQ(obj.members().size(), 2u);
  EXPECT_EQ(obj.members()[0].first, "z");
  EXPECT_EQ(obj.members()[0].second.as_number(), 3);
  EXPECT_EQ(obj.members()[1].first, "a");
}

TEST(Json, NumbersUseShortestRoundTripForm) {
  EXPECT_EQ(json_number(42), "42");
  EXPECT_EQ(json_number(0.1), "0.1");
  EXPECT_EQ(json_number(-1.5), "-1.5");
  const double v = 2.392368572360037;
  EXPECT_EQ(Json::parse(json_number(v)).as_number(), v);
}

TEST(Json, StringEscapesRoundTrip) {
  Json doc = Json::object();
  doc.set("s", "quote \" backslash \\ newline \n tab \t");
  EXPECT_EQ(Json::parse(doc.dump()).at("s").as_string(),
            doc.at("s").as_string());
}

TEST(Json, ParseErrorsCarryByteOffsets) {
  EXPECT_THROW(Json::parse("{\"a\": }"), JsonError);
  EXPECT_THROW(Json::parse("[1, 2"), JsonError);
  EXPECT_THROW(Json::parse("{} trailing"), JsonError);
  EXPECT_THROW(Json::parse(""), JsonError);
  try {
    Json::parse("[1, oops]");
    FAIL() << "expected JsonError";
  } catch (const JsonError& e) {
    EXPECT_GE(e.offset, 0);
    EXPECT_FALSE(e.message.empty());
  }
}

TEST(Json, TypeMismatchThrows) {
  const Json num(1.0);
  EXPECT_THROW((void)num.as_string(), JsonError);
  EXPECT_THROW((void)num.at("k"), JsonError);
  const Json obj = Json::object();
  EXPECT_THROW((void)obj.at("missing"), JsonError);
  EXPECT_EQ(obj.number_or("missing", 7.5), 7.5);
}

// --- Report ----------------------------------------------------------------

Report tiny_report() {
  Report rep;
  rep.seed = 7;
  rep.git = "abc1234";
  BenchResult b;
  b.name = "table1";
  b.title = "atomics";
  b.config.set("max_edges", 1000);
  b.records.push_back(Record{"", "OH", "pull", {}});
  b.records.back().value("runtime_ms", 1.5).value("bytes_atomic", 0);
  b.records.push_back(Record{"", "OH", "push", {}});
  b.records.back().value("runtime_ms", 4.0).value("bytes_atomic", 1024);
  rep.benches.push_back(std::move(b));
  return rep;
}

TEST(Report, JsonRoundTripPreservesEverything) {
  const Report rep = tiny_report();
  const Report back = Report::from_json(Json::parse(rep.to_json().dump()));
  EXPECT_EQ(back.schema, kSchema);
  EXPECT_EQ(back.seed, 7u);
  EXPECT_EQ(back.git, "abc1234");
  ASSERT_EQ(back.benches.size(), 1u);
  EXPECT_EQ(back.benches[0].name, "table1");
  EXPECT_EQ(back.benches[0].config.at("max_edges").as_int(), 1000);
  ASSERT_EQ(back.benches[0].records.size(), 2u);
  EXPECT_EQ(back.value("table1", "", "OH", "pull", "runtime_ms"), 1.5);
  // Round-trip must be byte-stable too.
  EXPECT_EQ(back.to_json().dump(), rep.to_json().dump());
}

TEST(Report, FromJsonRejectsUnknownSchema) {
  Json doc = tiny_report().to_json();
  doc.set("schema", "tlpbench-v999");
  EXPECT_THROW(Report::from_json(doc), JsonError);
}

TEST(Report, SelectTreatsEmptyFieldsAsWildcards) {
  const Report rep = tiny_report();
  EXPECT_EQ(rep.select("table1", "", "", "").size(), 2u);
  EXPECT_EQ(rep.select("table1", "", "OH", "pull").size(), 1u);
  EXPECT_EQ(rep.select("table1", "", "XX", "").size(), 0u);
  EXPECT_FALSE(rep.value("table1", "", "OH", "pull", "no_such_metric"));
}

// --- shape assertions ------------------------------------------------------

/// A report shaped like a miniature suite run: two datasets, two variants,
/// plus a sweep series — enough to exercise every assertion kind.
Report shape_report() {
  Report rep;
  BenchResult b;
  b.name = "bench";
  for (const char* ds : {"A", "B"}) {
    const double base = ds[0] == 'A' ? 1.0 : 2.0;
    b.records.push_back(Record{"", ds, "fast", {}});
    b.records.back().value("ms", base).value("atomics", 0);
    b.records.push_back(Record{"", ds, "slow", {}});
    b.records.back().value("ms", 3 * base).value("atomics", 100);
    for (int n = 1; n <= 4; n *= 2) {
      b.records.push_back(Record{"sweep", ds, "n=" + std::to_string(n), {}});
      b.records.back().value("speedup", static_cast<double>(n));
    }
  }
  rep.benches.push_back(std::move(b));
  return rep;
}

ShapeAssertion make(const std::string& kind) {
  ShapeAssertion a;
  a.id = "test-" + kind;
  a.bench = "bench";
  a.kind = kind;
  a.metric = "ms";
  return a;
}

TEST(Shapes, LessPassesAndWildcardExpandsPerDataset) {
  ShapeAssertion a = make("less");
  a.a.variant = "fast";
  a.b.variant = "slow";
  const ShapeOutcome out = evaluate(a, shape_report());
  EXPECT_TRUE(out.passed);
  EXPECT_EQ(out.comparisons, 2);  // datasets A and B
}

TEST(Shapes, LessFailsWithPointDetail) {
  ShapeAssertion a = make("less");
  a.a.variant = "slow";  // reversed: 3 !< 1
  a.b.variant = "fast";
  const ShapeOutcome out = evaluate(a, shape_report());
  EXPECT_FALSE(out.passed);
  EXPECT_NE(out.detail.find("A"), std::string::npos);
  EXPECT_NE(out.detail.find("!<"), std::string::npos);
}

TEST(Shapes, LessToleranceAcceptsEquality) {
  ShapeAssertion a = make("less");
  a.a.variant = "fast";
  a.b.variant = "fast";  // equal values
  EXPECT_FALSE(evaluate(a, shape_report()).passed);
  a.tol = 0.001;
  EXPECT_TRUE(evaluate(a, shape_report()).passed);
}

TEST(Shapes, RatioBandChecksBothEdges) {
  ShapeAssertion a = make("ratio_band");
  a.a.variant = "slow";
  a.b.variant = "fast";  // ratio 3.0 on both datasets
  a.lo = 2;
  a.hi = 4;
  EXPECT_TRUE(evaluate(a, shape_report()).passed);
  a.hi = 2.5;
  EXPECT_FALSE(evaluate(a, shape_report()).passed);
  a.lo = 3.5;
  a.hi = 10;
  EXPECT_FALSE(evaluate(a, shape_report()).passed);
}

TEST(Shapes, ZeroAndBand) {
  ShapeAssertion z = make("zero");
  z.metric = "atomics";
  z.a.variant = "fast";
  EXPECT_TRUE(evaluate(z, shape_report()).passed);
  z.a.variant = "slow";
  EXPECT_FALSE(evaluate(z, shape_report()).passed);

  ShapeAssertion b = make("band");
  b.metric = "atomics";
  b.a.variant = "slow";
  b.lo = 1;
  b.hi = 1e9;
  EXPECT_TRUE(evaluate(b, shape_report()).passed);
  b.hi = 50;
  EXPECT_FALSE(evaluate(b, shape_report()).passed);
}

TEST(Shapes, IncreasingSeriesWithTolerance) {
  ShapeAssertion a = make("increasing");
  a.metric = "speedup";
  a.a.section = "sweep";
  a.series = {"n=1", "n=2", "n=4"};
  EXPECT_TRUE(evaluate(a, shape_report()).passed);
  EXPECT_EQ(evaluate(a, shape_report()).comparisons, 2);  // two datasets

  a.kind = "decreasing";
  EXPECT_FALSE(evaluate(a, shape_report()).passed);
  a.series = {"n=4", "n=2", "n=1"};
  EXPECT_TRUE(evaluate(a, shape_report()).passed);
}

TEST(Shapes, MissingSideSkipsButNoMatchesFails) {
  // A missing record on one side mirrors a support-matrix hole: skipped.
  ShapeAssertion a = make("less");
  a.a.variant = "fast";
  a.a.dataset = "A";
  a.b.variant = "nonexistent";
  const ShapeOutcome skipped = evaluate(a, shape_report());
  EXPECT_FALSE(skipped.passed);  // ... but zero comparisons overall = failure
  EXPECT_NE(skipped.detail.find("no records matched"), std::string::npos);

  // Unknown metric everywhere: schema drift must fail loudly, not pass.
  ShapeAssertion m = make("less");
  m.metric = "renamed_metric";
  m.a.variant = "fast";
  m.b.variant = "slow";
  EXPECT_FALSE(evaluate(m, shape_report()).passed);

  // Unknown bench fails with a message.
  ShapeAssertion nb = make("less");
  nb.bench = "gone";
  EXPECT_FALSE(evaluate(nb, shape_report()).passed);

  // Unknown kind fails rather than silently passing.
  ShapeAssertion nk = make("frobnicate");
  EXPECT_FALSE(evaluate(nk, shape_report()).passed);
}

TEST(Shapes, AssertionsParseFromBaselineJson) {
  const std::string text = R"({
    "assertions": [
      {"id": "x", "bench": "bench", "kind": "less", "metric": "ms",
       "a": {"variant": "fast"}, "b": {"variant": "slow"},
       "tol": 0.05, "note": "fast wins"},
      {"id": "y", "bench": "bench", "kind": "increasing",
       "metric": "speedup", "a": {"section": "sweep"},
       "series": ["n=1", "n=2", "n=4"]}
    ]
  })";
  const auto assertions = assertions_from_json(Json::parse(text));
  ASSERT_EQ(assertions.size(), 2u);
  EXPECT_EQ(assertions[0].id, "x");
  EXPECT_EQ(assertions[0].tol, 0.05);
  EXPECT_EQ(assertions[1].series.size(), 3u);
  const auto outcomes = evaluate_all(assertions, shape_report());
  EXPECT_TRUE(outcomes[0].passed);
  EXPECT_TRUE(outcomes[1].passed);
}

// --- renderer --------------------------------------------------------------

TEST(RenderMd, DeterministicWithProvenanceAndShapeSummary) {
  Report rep = shape_report();
  rep.git = "cafe123";
  ShapeAssertion a = make("less");
  a.a.variant = "fast";
  a.b.variant = "slow";
  a.note = "fast beats slow";
  const auto outcomes = evaluate_all({a}, rep);
  const std::string md = render_experiments_md(rep, outcomes);
  EXPECT_EQ(md, render_experiments_md(rep, outcomes));  // byte-stable
  EXPECT_NE(md.find("Generated file — do not edit"), std::string::npos);
  EXPECT_NE(md.find("test-less"), std::string::npos);
  EXPECT_NE(md.find("fast beats slow"), std::string::npos);
  EXPECT_NE(md.find("cafe123"), std::string::npos);
  EXPECT_NE(md.find("tlpbench-v1"), std::string::npos);
}

}  // namespace
}  // namespace tlp::report
