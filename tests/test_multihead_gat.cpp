// Tests for multi-head GAT: reference semantics, the head-interleaved
// attention halves, and the fused kernel against the reference across head
// counts and graph shapes.
#include <gtest/gtest.h>

#include <tuple>

#include "common/rng.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "kernels/conv_common.hpp"
#include "kernels/fused_gat.hpp"
#include "models/reference.hpp"
#include "systems/tlpgnn_system.hpp"

namespace tlp {
namespace {

using graph::Csr;
using models::ConvSpec;
using models::ModelKind;
using tensor::Tensor;

TEST(MultiHead, SpecValidatesHeadDivisibility) {
  Rng rng(1);
  EXPECT_THROW(ConvSpec::make(ModelKind::kGat, 30, rng, 4), CheckError);
  const ConvSpec ok = ConvSpec::make(ModelKind::kGat, 32, rng, 4);
  EXPECT_EQ(ok.gat.heads, 4);
  EXPECT_EQ(ok.gat.head_dim(), 8);
}

TEST(MultiHead, HalvesAreHeadInterleaved) {
  Rng rng(2);
  const Tensor h = Tensor::random(3, 8, rng);
  const ConvSpec spec = ConvSpec::make(ModelKind::kGat, 8, rng, 2);
  const models::GatHalves halves = models::gat_halves(h, spec.gat);
  ASSERT_EQ(halves.src.size(), 6u);
  // Manual dot for vertex 1, head 1 (dims 4..7).
  float expect = 0.0f;
  for (std::int64_t j = 4; j < 8; ++j)
    expect += h.at(1, j) * spec.gat.attn_src[static_cast<std::size_t>(j)];
  EXPECT_NEAR(halves.src[1 * 2 + 1], expect, 1e-5);
}

TEST(MultiHead, OneHeadMatchesLegacySingleHead) {
  Rng rng(3);
  const Csr g = graph::power_law(100, 800, 2.3, rng);
  const Tensor h = Tensor::random(g.num_vertices(), 16, rng);
  Rng spec_rng(4);
  const ConvSpec s1 = ConvSpec::make(ModelKind::kGat, 16, spec_rng);
  EXPECT_EQ(s1.gat.heads, 1);
  const Tensor ref = models::reference_conv(g, h, s1);
  EXPECT_EQ(ref.cols(), 16);
}

TEST(MultiHead, HeadsAreIndependentSlices) {
  // With 2 heads, slice 0 of the output must equal the single-head result
  // computed with head 0's attention vector over slice 0 of the features.
  Rng rng(5);
  const Csr g = graph::power_law(60, 400, 2.4, rng);
  const Tensor h = Tensor::random(g.num_vertices(), 8, rng);
  const ConvSpec multi = ConvSpec::make(ModelKind::kGat, 8, rng, 2);
  const Tensor out = models::reference_conv(g, h, multi);

  // Build the head-0 sub-problem explicitly.
  Tensor h0(g.num_vertices(), 4);
  for (graph::VertexId v = 0; v < g.num_vertices(); ++v)
    for (std::int64_t j = 0; j < 4; ++j) h0.at(v, j) = h.at(v, j);
  ConvSpec single;
  single.kind = ModelKind::kGat;
  single.gat.heads = 1;
  single.gat.leaky_slope = multi.gat.leaky_slope;
  single.gat.attn_src.assign(multi.gat.attn_src.begin(),
                             multi.gat.attn_src.begin() + 4);
  single.gat.attn_dst.assign(multi.gat.attn_dst.begin(),
                             multi.gat.attn_dst.begin() + 4);
  const Tensor out0 = models::reference_conv(g, h0, single);
  for (graph::VertexId v = 0; v < g.num_vertices(); ++v)
    for (std::int64_t j = 0; j < 4; ++j)
      EXPECT_NEAR(out.at(v, j), out0.at(v, j), 1e-4);
}

TEST(MultiHead, LogitsSizeScalesWithHeads) {
  Rng rng(6);
  const Csr g = graph::path(10);
  const Tensor h = Tensor::random(10, 12, rng);
  const ConvSpec spec = ConvSpec::make(ModelKind::kGat, 12, rng, 3);
  const auto logits = models::reference_gat_logits(g, h, spec.gat);
  EXPECT_EQ(logits.size(),
            static_cast<std::size_t>(g.num_edges()) * 3u);
}

using HeadParam = std::tuple<int /*heads*/, int /*f*/, int /*graph seed*/>;

class FusedMultiHead : public ::testing::TestWithParam<HeadParam> {};

TEST_P(FusedMultiHead, KernelMatchesReference) {
  const auto [heads, f, seed] = GetParam();
  Rng rng(static_cast<unsigned>(seed));
  const Csr g = graph::power_law(150, 900, 2.3, rng);
  const Tensor h = Tensor::random(g.num_vertices(), f, rng);
  const ConvSpec spec = ConvSpec::make(ModelKind::kGat, f, rng, heads);

  sim::Device dev;
  const kernels::DeviceGraph dg = kernels::upload_graph(dev, g);
  const auto dfeat = kernels::upload_features(dev, h);
  auto dout = dev.alloc_zeroed<float>(dg.n * f);
  const models::GatHalves halves = models::gat_halves(h, spec.gat);
  const auto dsh = dev.upload<float>(halves.src);
  const auto ddh = dev.upload<float>(halves.dst);
  kernels::FusedGatKernel k(dg, dfeat, dsh, ddh, dout, f,
                            spec.gat.leaky_slope, heads);
  dev.launch(k, {});

  const Tensor out = kernels::download_features(dev, dout, dg.n, f);
  const Tensor ref = models::reference_conv(g, h, spec);
  EXPECT_TRUE(tensor::allclose(out, ref, 1e-3, 1e-4))
      << "heads=" << heads << " f=" << f << " max diff "
      << tensor::max_abs_diff(out, ref);
}

INSTANTIATE_TEST_SUITE_P(Sweep, FusedMultiHead,
                         ::testing::Combine(::testing::Values(1, 2, 4, 8),
                                            ::testing::Values(16, 32, 64),
                                            ::testing::Values(7, 8)));

TEST(MultiHead, TlpgnnSystemRunsMultiHead) {
  Rng rng(9);
  const Csr g = graph::power_law(120, 700, 2.3, rng);
  const Tensor h = Tensor::random(g.num_vertices(), 32, rng);
  const ConvSpec spec = ConvSpec::make(ModelKind::kGat, 32, rng, 4);
  systems::TlpgnnSystem sys;
  sim::Device dev;
  const systems::RunResult r = sys.run(dev, g, h, spec);
  EXPECT_EQ(r.kernel_launches, 1);  // still one fused kernel
  const Tensor ref = models::reference_conv(g, h, spec);
  EXPECT_TRUE(tensor::allclose(r.output, ref, 1e-3, 1e-4));
}

TEST(MultiHead, MoreHeadsCostMoreSoftmaxWork) {
  Rng rng(10);
  const Csr g = graph::power_law(200, 2000, 2.2, rng);
  const Tensor h = Tensor::random(g.num_vertices(), 32, rng);
  auto time_for = [&](int heads) {
    Rng srng(11);
    const ConvSpec spec = ConvSpec::make(ModelKind::kGat, 32, srng, heads);
    systems::TlpgnnSystem sys;
    sim::Device dev;
    return sys.run(dev, g, h, spec).gpu_time_ms;
  };
  EXPECT_GT(time_for(8), time_for(1));
}

}  // namespace
}  // namespace tlp
