// Shared fixture for the analytical-vs-mechanistic differential suite
// (tests/test_analytical.cpp) and the one-shot golden generator that
// captured tests/goldens/mech_counters.txt from the pre-refactor build.
//
// Both sides must construct byte-identical workloads, so everything that
// shapes the access stream lives here: the three graph shapes (a power-law
// social-graph replica, a uniform ring, and the star that maximizes
// imbalance and atomic contention), the fixed feature size/seed, and the
// counter summation + text formatting. Doubles print with %.17g so a
// round-trip through the golden file is exact.
#pragma once

#include <cinttypes>
#include <cstdio>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "fuzz/kernel_runners.hpp"
#include "graph/csr.hpp"
#include "graph/generators.hpp"
#include "models/model.hpp"
#include "sim/device.hpp"
#include "tensor/tensor.hpp"

namespace tlp::testing {

inline constexpr std::int64_t kAnalyticalFeature = 64;
inline constexpr int kAnalyticalGatHeads = 2;
inline constexpr std::uint64_t kAnalyticalSeed = 0x7a11a6e5ULL;

struct GraphCase {
  std::string name;
  graph::Csr g;
};

/// The three shapes of the differential matrix: skewed, uniform, degenerate.
inline std::vector<GraphCase> analytical_graphs() {
  std::vector<GraphCase> out;
  {
    Rng rng(kAnalyticalSeed);
    out.push_back({"power_law", graph::power_law(512, 4096, 2.1, rng)});
  }
  out.push_back({"ring", graph::regular_ring(512, 8)});
  out.push_back({"star", graph::star(256)});
  return out;
}

/// The convolution each strategy runs: GAT for the fused-GAT kernel, GCN
/// (norm-pair weights, self term — the richest access mix) for the rest.
inline models::ConvSpec analytical_spec(const std::string& runner_name) {
  Rng rng(kAnalyticalSeed + 1);
  if (runner_name == "fused_gat") {
    return models::ConvSpec::make(models::ModelKind::kGat, kAnalyticalFeature,
                                  rng, kAnalyticalGatHeads);
  }
  return models::ConvSpec::make(models::ModelKind::kGcn, kAnalyticalFeature,
                                rng);
}

inline tensor::Tensor analytical_features(std::int64_t rows) {
  Rng rng(kAnalyticalSeed + 2);
  return tensor::Tensor::random(rows, kAnalyticalFeature, rng);
}

/// Summed per-launch counters of one (runner, graph) run — the quantity the
/// goldens pin exactly for the mechanistic tier and the bands bound for the
/// analytical tier.
struct CounterSums {
  std::int64_t requests = 0;
  std::int64_t sectors = 0;
  std::int64_t bytes_load = 0;
  std::int64_t bytes_store = 0;
  std::int64_t bytes_atomic = 0;
  std::int64_t bytes_dram = 0;
  std::int64_t l1_accesses = 0;
  std::int64_t l1_hits = 0;
  std::int64_t l2_accesses = 0;
  std::int64_t l2_hits = 0;
  std::int64_t atomic_ops = 0;
  double issue_cycles = 0;
  double mem_stall_cycles = 0;
  double atomic_stall_cycles = 0;
  double elapsed_cycles = 0;
};

inline CounterSums sum_counters(const sim::Device& dev) {
  CounterSums s;
  for (const sim::KernelRecord& r : dev.profiler().records()) {
    s.requests += r.requests;
    s.sectors += r.sectors;
    s.bytes_load += r.bytes_load;
    s.bytes_store += r.bytes_store;
    s.bytes_atomic += r.bytes_atomic;
    s.bytes_dram += r.bytes_dram;
    s.l1_accesses += r.l1_accesses;
    s.l1_hits += r.l1_hits;
    s.l2_accesses += r.l2_accesses;
    s.l2_hits += r.l2_hits;
    s.atomic_ops += r.atomic_ops;
    s.issue_cycles += r.issue_cycles;
    s.mem_stall_cycles += r.mem_stall_cycles;
    s.atomic_stall_cycles += r.atomic_stall_cycles;
    s.elapsed_cycles += r.elapsed_cycles;
  }
  return s;
}

/// One golden record: "case <runner> <graph>" then one "key value" line per
/// counter. %.17g makes the double fields exact across the file round-trip.
inline std::string format_case(const std::string& runner,
                               const std::string& graph,
                               const CounterSums& s) {
  char buf[256];
  std::string out = "case " + runner + " " + graph + "\n";
  const auto add_i = [&](const char* k, std::int64_t v) {
    std::snprintf(buf, sizeof(buf), "%s %" PRId64 "\n", k, v);
    out += buf;
  };
  const auto add_d = [&](const char* k, double v) {
    std::snprintf(buf, sizeof(buf), "%s %.17g\n", k, v);
    out += buf;
  };
  add_i("requests", s.requests);
  add_i("sectors", s.sectors);
  add_i("bytes_load", s.bytes_load);
  add_i("bytes_store", s.bytes_store);
  add_i("bytes_atomic", s.bytes_atomic);
  add_i("bytes_dram", s.bytes_dram);
  add_i("l1_accesses", s.l1_accesses);
  add_i("l1_hits", s.l1_hits);
  add_i("l2_accesses", s.l2_accesses);
  add_i("l2_hits", s.l2_hits);
  add_i("atomic_ops", s.atomic_ops);
  add_d("issue_cycles", s.issue_cycles);
  add_d("mem_stall_cycles", s.mem_stall_cycles);
  add_d("atomic_stall_cycles", s.atomic_stall_cycles);
  add_d("elapsed_cycles", s.elapsed_cycles);
  return out;
}

}  // namespace tlp::testing
