// Tests for the fault-injection plan, guarded device memory, and the
// OutOfMemory partitioned-fallback path through tlp::Engine.
#include <gtest/gtest.h>

#include <cstring>

#include "core/engine.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "models/reference.hpp"
#include "tensor/tensor.hpp"

namespace tlp {
namespace {

graph::Csr ring_graph(graph::VertexId n) {
  std::vector<graph::Edge> edges;
  for (graph::VertexId v = 0; v < n; ++v)
    edges.push_back({v, (v + 1) % n});
  return graph::build_csr(n, std::move(edges), {.dedup = false});
}

/// Bitwise equality — stricter than operator== (distinguishes -0.0f, treats
/// NaN == NaN), which is the contract the partitioned fallback promises.
void expect_bit_identical(const tensor::Tensor& a, const tensor::Tensor& b) {
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  const auto fa = a.flat();
  const auto fb = b.flat();
  EXPECT_EQ(std::memcmp(fa.data(), fb.data(), fa.size_bytes()), 0)
      << "partitioned output is not bit-identical to the full-graph run";
}

struct Workload {
  graph::Csr g;
  tensor::Tensor feat;
  models::ConvSpec spec;
};

Workload make_workload(models::ModelKind kind, graph::Csr g,
                       std::int64_t f = 16) {
  Rng rng(7);
  Workload w{std::move(g), {}, {}};
  w.feat = tensor::Tensor::random(w.g.num_vertices(), f, rng);
  w.spec = models::ConvSpec::make(kind, f, rng);
  return w;
}

TEST(FaultInjection, InjectedOomDegradesToBitIdenticalPartitionedRun) {
  Rng grng(3);
  Workload w = make_workload(models::ModelKind::kGcn,
                             graph::power_law(400, 3000, 2.3, grng));

  Engine clean;
  const systems::RunResult base = clean.conv(w.g, w.feat, w.spec);
  EXPECT_FALSE(base.degradation.degraded);

  EngineOptions opts;
  opts.device.faults.oom_at_alloc = 1;  // first device alloc fails once
  Engine faulty(opts);
  const systems::RunResult r = faulty.conv(w.g, w.feat, w.spec);

  EXPECT_TRUE(r.degradation.degraded);
  EXPECT_GE(r.degradation.partitions, 2);
  EXPECT_EQ(r.degradation.retries, 0);
  EXPECT_NE(r.degradation.reason.find("allocation"), std::string::npos);
  expect_bit_identical(base.output, r.output);
}

TEST(FaultInjection, DegradedRunStaysBitIdenticalAcrossModels) {
  for (const auto kind :
       {models::ModelKind::kGcn, models::ModelKind::kGin,
        models::ModelKind::kSage, models::ModelKind::kGat}) {
    Rng grng(11);
    Workload w = make_workload(kind, graph::power_law(300, 2400, 2.2, grng));

    Engine clean;
    const systems::RunResult base = clean.conv(w.g, w.feat, w.spec);

    EngineOptions opts;
    opts.device.faults.oom_at_alloc = 2;
    Engine faulty(opts);
    const systems::RunResult r = faulty.conv(w.g, w.feat, w.spec);

    EXPECT_TRUE(r.degradation.degraded) << models::model_name(kind);
    expect_bit_identical(base.output, r.output);
  }
}

TEST(FaultInjection, CapacityOomDegradesAndRecordsRetries) {
  Workload w = make_workload(models::ModelKind::kGcn, ring_graph(256));

  Engine clean;
  const systems::RunResult base = clean.conv(w.g, w.feat, w.spec);
  ASSERT_GT(base.peak_device_bytes, 0);

  EngineOptions opts;
  // Below the full-graph footprint, but comfortably above one half's.
  opts.device_memory_bytes = base.peak_device_bytes - 1;
  Engine small(opts);
  const systems::RunResult r = small.conv(w.g, w.feat, w.spec);

  EXPECT_TRUE(r.degradation.degraded);
  EXPECT_GE(r.degradation.partitions, 2);
  EXPECT_NE(r.degradation.reason.find("capacity"), std::string::npos);
  expect_bit_identical(base.output, r.output);
}

TEST(FaultInjection, ExhaustedRetriesPropagateOutOfMemory) {
  Workload w = make_workload(models::ModelKind::kGcn, ring_graph(64));
  EngineOptions opts;
  opts.device_memory_bytes = 512;  // nothing fits, ever
  Engine engine(opts);
  EXPECT_THROW((void)engine.conv(w.g, w.feat, w.spec), OutOfMemory);
}

TEST(FaultInjection, DegradationCanBeDisabled) {
  Workload w = make_workload(models::ModelKind::kGcn, ring_graph(64));
  EngineOptions opts;
  opts.device.faults.oom_at_alloc = 1;
  opts.degrade.enabled = false;
  Engine engine(opts);
  EXPECT_THROW((void)engine.conv(w.g, w.feat, w.spec), OutOfMemory);
}

TEST(FaultInjection, InjectedLaunchFailurePropagates) {
  Workload w = make_workload(models::ModelKind::kGcn, ring_graph(64));
  EngineOptions opts;
  opts.device.faults.fail_launch = 1;
  Engine engine(opts);
  try {
    (void)engine.conv(w.g, w.feat, w.spec);
    FAIL() << "expected LaunchFailure";
  } catch (const LaunchFailure& e) {
    EXPECT_FALSE(e.kernel.empty());
    EXPECT_NE(std::string(e.what()).find(e.kernel), std::string::npos);
  }
}

TEST(FaultInjection, BitFlipMakesReferenceCheckFail) {
  // Ring graph: every feature element feeds exactly one output element, so a
  // corrupted feature buffer must surface in the output.
  Workload w = make_workload(models::ModelKind::kGcn, ring_graph(128));

  Engine clean;
  const systems::RunResult base = clean.conv(w.g, w.feat, w.spec);
  const tensor::Tensor ref = models::reference_conv(w.g, w.feat, w.spec);
  ASSERT_TRUE(tensor::allclose(base.output, ref, 1e-3, 1e-4));

  EngineOptions opts;
  opts.device.faults.flip_at_launch = 1;
  opts.device.faults.flip_bits = 32;
  opts.device.faults.flip_alloc = 3;  // indptr, indices, norm, -> features
  Engine faulty(opts);
  const systems::RunResult r = faulty.conv(w.g, w.feat, w.spec);

  EXPECT_NE(std::memcmp(base.output.flat().data(), r.output.flat().data(),
                        base.output.flat().size_bytes()),
            0)
      << "bit flips in the feature buffer left the output unchanged";
  EXPECT_FALSE(tensor::allclose(r.output, ref, 1e-3, 1e-4))
      << "reference check failed to catch injected corruption";
}

// --- guarded-memory detection through real kernel launches -----------------

/// Stores one float past the end of its buffer (classic off-by-one).
class OobStoreKernel final : public sim::WarpKernel {
 public:
  OobStoreKernel(sim::DevPtr<float> buf, std::int64_t n) : buf_(buf), n_(n) {}
  [[nodiscard]] std::int64_t num_items() const override { return 1; }
  [[nodiscard]] std::string name() const override { return "oob_store"; }
  void run_item(sim::WarpCtx& warp, std::int64_t) override {
    warp.store_scalar_f32(buf_, n_, 1.0f);  // one past the end
  }

 private:
  sim::DevPtr<float> buf_;
  std::int64_t n_;
};

/// All warps store non-atomically to element 0 — a write race.
class RacyPushKernel final : public sim::WarpKernel {
 public:
  explicit RacyPushKernel(sim::DevPtr<float> buf) : buf_(buf) {}
  [[nodiscard]] std::int64_t num_items() const override { return 8; }
  [[nodiscard]] std::string name() const override { return "racy_push"; }
  void run_item(sim::WarpCtx& warp, std::int64_t item) override {
    warp.store_scalar_f32(buf_, 0, static_cast<float>(item));
  }

 private:
  sim::DevPtr<float> buf_;
};

/// Same access pattern, but atomic — the legal way to combine across warps.
class AtomicPushKernel final : public sim::WarpKernel {
 public:
  explicit AtomicPushKernel(sim::DevPtr<float> buf) : buf_(buf) {}
  [[nodiscard]] std::int64_t num_items() const override { return 8; }
  [[nodiscard]] std::string name() const override { return "atomic_push"; }
  void run_item(sim::WarpCtx& warp, std::int64_t item) override {
    (void)warp.atomic_add_scalar_f32(buf_, 0, static_cast<float>(item));
  }

 private:
  sim::DevPtr<float> buf_;
};

sim::Device guarded_device() {
  sim::DeviceOptions opts;
  opts.mem_mode = sim::MemoryMode::kGuarded;
  return sim::Device(sim::GpuSpec::v100(), opts);
}

TEST(GuardedMemory, RedzoneCatchesOobKernelStore) {
  sim::Device dev = guarded_device();
  const std::int64_t n = 16;
  sim::DevPtr<float> buf = dev.alloc_zeroed<float>(n);
  OobStoreKernel k(buf, n);
  try {
    dev.launch(k);
    FAIL() << "expected InvalidAccess";
  } catch (const InvalidAccess& e) {
    EXPECT_EQ(e.kernel, "oob_store");
    EXPECT_EQ(e.byte_addr, buf.addr(n));
    const std::string what = e.what();
    EXPECT_NE(what.find("oob_store"), std::string::npos);
    EXPECT_NE(what.find(std::to_string(buf.addr(n))), std::string::npos);
  }
}

TEST(GuardedMemory, RaceDetectorFlagsNonAtomicCrossWarpStores) {
  sim::Device dev = guarded_device();
  sim::DevPtr<float> buf = dev.alloc_zeroed<float>(4);
  RacyPushKernel k(buf);
  try {
    dev.launch(k);
    FAIL() << "expected WriteRace";
  } catch (const WriteRace& e) {
    EXPECT_EQ(e.kernel, "racy_push");
    EXPECT_EQ(e.byte_addr, buf.addr(0));
    EXPECT_NE(e.warp_a, e.warp_b);
  }
}

TEST(GuardedMemory, RaceDetectorPassesAtomicCrossWarpStores) {
  sim::Device dev = guarded_device();
  sim::DevPtr<float> buf = dev.alloc_zeroed<float>(4);
  AtomicPushKernel k(buf);
  EXPECT_NO_THROW(dev.launch(k));
  const std::vector<float> out = dev.download(buf);
  EXPECT_FLOAT_EQ(out[0], 0 + 1 + 2 + 3 + 4 + 5 + 6 + 7);
}

TEST(GuardedMemory, RealConvolutionRunsCleanUnderGuards) {
  // The production kernels must not trip the OOB or race detectors.
  for (const auto kind : {models::ModelKind::kGcn, models::ModelKind::kGat}) {
    Rng grng(5);
    Workload w = make_workload(kind, graph::power_law(300, 2400, 2.3, grng));
    EngineOptions opts;
    opts.device.mem_mode = sim::MemoryMode::kGuarded;
    Engine engine(opts);
    const systems::RunResult r = engine.conv(w.g, w.feat, w.spec);
    const tensor::Tensor ref = models::reference_conv(w.g, w.feat, w.spec);
    EXPECT_TRUE(tensor::allclose(r.output, ref, 1e-3, 1e-4))
        << models::model_name(kind);
  }
}

}  // namespace
}  // namespace tlp
