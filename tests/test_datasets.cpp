// Tests for the dataset-replica registry (Table 4 substitutes).
#include <gtest/gtest.h>

#include "common/check.hpp"
#include "graph/datasets.hpp"
#include "graph/stats.hpp"

namespace tlp::graph {
namespace {

TEST(Datasets, RegistryMatchesTable4) {
  const auto all = all_datasets();
  ASSERT_EQ(all.size(), 11u);
  EXPECT_STREQ(all.front().abbr, "CS");
  EXPECT_STREQ(all.back().abbr, "OT");
  // Table 4 is sorted by edge count.
  for (std::size_t i = 1; i < all.size(); ++i)
    EXPECT_LE(all[i - 1].edges, all[i].edges);
}

TEST(Datasets, LookupByAbbr) {
  const auto& rd = dataset_by_abbr("RD");
  EXPECT_STREQ(rd.name, "Reddit");
  EXPECT_EQ(rd.edges, 114'000'000);
  EXPECT_TRUE(rd.big4);
  EXPECT_FALSE(rd.advisor_supported);
  EXPECT_THROW(dataset_by_abbr("nope"), tlp::CheckError);
}

TEST(Datasets, Big4Flags) {
  int big = 0;
  for (const auto& d : all_datasets()) big += d.big4 ? 1 : 0;
  EXPECT_EQ(big, 4);
  EXPECT_TRUE(dataset_by_abbr("CL").big4);
  EXPECT_FALSE(dataset_by_abbr("OH").big4);
}

TEST(Datasets, ScaledReplicaPreservesAvgDegree) {
  const auto& rd = dataset_by_abbr("RD");
  const Csr g = make_dataset(rd, {.max_edges = 200'000, .seed = 1});
  EXPECT_LE(g.num_edges(), 200'000);
  EXPECT_NEAR(g.avg_degree(), rd.avg_degree(), rd.avg_degree() * 0.05);
}

TEST(Datasets, SmallDatasetNotScaled) {
  const auto& cs = dataset_by_abbr("CS");
  const Csr g = make_dataset(cs, {.max_edges = 1'000'000});
  EXPECT_EQ(g.num_vertices(), cs.vertices);
  EXPECT_EQ(g.num_edges(), cs.edges);
}

TEST(Datasets, FullFlagKeepsPaperScale) {
  const auto& pd = dataset_by_abbr("PD");
  const Csr g = make_dataset(pd, {.max_edges = 10, .full = true});
  EXPECT_EQ(g.num_vertices(), pd.vertices);
  EXPECT_EQ(g.num_edges(), pd.edges);
}

TEST(Datasets, ReplicasAreDeterministicPerSeed) {
  const auto& cr = dataset_by_abbr("CR");
  const Csr a = make_dataset(cr, {.seed = 5});
  const Csr b = make_dataset(cr, {.seed = 5});
  const Csr c = make_dataset(cr, {.seed = 6});
  EXPECT_EQ(std::vector(a.indices().begin(), a.indices().end()),
            std::vector(b.indices().begin(), b.indices().end()));
  EXPECT_NE(std::vector(a.indices().begin(), a.indices().end()),
            std::vector(c.indices().begin(), c.indices().end()));
}

TEST(Datasets, GoldenFingerprintsAreSeedStable) {
  // Bit-level pin of two replicas (one exact small dataset, one scaled
  // power-law replica). Guards the generators' Rng consumption order — a
  // change here invalidates recorded fuzz repros and calibration numbers.
  const Csr cs = make_dataset(dataset_by_abbr("CS"), {.seed = 42});
  EXPECT_EQ(fingerprint(cs), 0x0097db8346917113ull);
  const Csr cr =
      make_dataset(dataset_by_abbr("CR"), {.max_edges = 50'000, .seed = 42});
  EXPECT_EQ(fingerprint(cr), 0xf9d94a3dc3cf9098ull);
}

TEST(Datasets, SkewOrdering) {
  // Reddit's replica must be much more skewed than the near-regular
  // molecular graphs.
  const Csr rd = make_dataset(dataset_by_abbr("RD"), {.max_edges = 100'000});
  const Csr dd = make_dataset(dataset_by_abbr("DD"), {.max_edges = 100'000});
  EXPECT_GT(degree_stats(rd).gini, degree_stats(dd).gini);
}

}  // namespace
}  // namespace tlp::graph
